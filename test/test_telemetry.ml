(* Tests for the live-telemetry layer: trace contexts leaving answers
   untouched, the flight-recorder ring, rolling windows, the SLO
   tracker's Prometheus family, histogram exposition across
   merge/diff, and the torn-read-free metrics snapshot under real
   domain concurrency. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let workload total =
  Synthetic.generate (Rng.create 606)
    (Synthetic.config ~total ~f_y:0.2 ~f_m:0.2 ~max_laxity:100.0 ())

let requirements = Quality.requirements ~precision:0.9 ~recall:0.6 ~laxity:50.0

let pure_driver ?obs () =
  Probe_driver.create_outcomes ?obs ~batch_size:4 (fun objs ->
      Array.map (fun o -> Probe_driver.Resolved (Synthetic.probe o)) objs)

let fingerprint (r : Synthetic.obj Engine.result) =
  ( List.map
      (fun e -> (e.Operator.obj.Synthetic.id, e.Operator.precise))
      r.Engine.report.Operator.answer,
    r.Engine.report.Operator.guarantees,
    r.Engine.counts )

(* Golden identity: a query with the whole telemetry stack on — flight
   recorder on the trace path, a stamped per-query context, shared
   metrics — answers bit-for-bit what the untraced direct path answers. *)
let test_traced_identical_to_untraced () =
  let data = workload 800 in
  let bare =
    Engine.execute ~rng:(Rng.create 607) ~max_laxity:100.0 ~domains:1
      ~instance:Synthetic.instance ~probe:(pure_driver ()) ~requirements data
  in
  let recorder = Flight_recorder.create ~capacity:64 () in
  let obs = Obs.create ~trace:(Flight_recorder.sink recorder) () in
  let trace_id = Engine.next_trace_id () in
  let ctx = { Trace.query = Some trace_id; tenant = Some "golden" } in
  let traced =
    (Engine.execute_many ~domains:1
       [|
         Engine.query ~rng:(Rng.create 607) ~max_laxity:100.0
           ~instance:Synthetic.instance
           ~probe:(pure_driver ~obs:(Obs.with_context obs ctx) ())
           ~obs ~tenant:"golden" ~trace_id ~requirements data;
       |]).(0)
  in
  checkb "identical answer, guarantees and costs" true
    (fingerprint bare = fingerprint traced);
  checkb "the run was actually recorded" true
    (Flight_recorder.recorded recorder > 0);
  (* Every recorded event carries the query's context. *)
  List.iter
    (fun (_, c, _) ->
      checkb "stamped" true (c.Trace.query = Some trace_id);
      checkb "tenant stamped" true (c.Trace.tenant = Some "golden"))
    (Flight_recorder.entries recorder)

(* The ring: capacity-bounded, FIFO eviction, and a dump is exactly the
   last min(n, capacity) events in arrival order. *)
let prop_recorder_ring =
  QCheck2.Test.make ~name:"flight-recorder ring is the last-N window"
    ~count:200
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 200))
    (fun (capacity, n) ->
      let r = Flight_recorder.create ~capacity ~clock:(fun () -> 0.0) () in
      for i = 0 to n - 1 do
        Flight_recorder.record r Trace.no_context
          (Trace.Note (string_of_int i))
      done;
      let expect =
        List.init (min n capacity) (fun j -> n - min n capacity + j)
      in
      let got =
        List.map
          (fun (_, _, e) ->
            match e with Trace.Note s -> int_of_string s | _ -> -1)
          (Flight_recorder.entries r)
      in
      let dump = Flight_recorder.manual_dump r ~reason:"test" in
      let dumped =
        List.map
          (fun (_, _, e) ->
            match e with Trace.Note s -> int_of_string s | _ -> -1)
          dump.Flight_recorder.events
      in
      Flight_recorder.recorded r = n && got = expect && dumped = expect)

let degraded_event =
  Trace.Degraded { verdict = `Maybe; action = `Forward; forced = true }

(* Per-query rings and automatic anomaly dumps: attribution, dedup per
   (reason, query), and chrome-trace rendering of the dump. *)
let test_recorder_anomaly_dumps () =
  let fired = ref [] in
  let r =
    Flight_recorder.create ~capacity:16
      ~clock:(fun () -> 0.0)
      ~on_dump:(fun d -> fired := d :: !fired)
      ()
  in
  let ctx7 = { Trace.query = Some 7; tenant = Some "acme" } in
  let ctx9 = { Trace.query = Some 9; tenant = None } in
  Flight_recorder.record r ctx7 (Trace.Note "a");
  Flight_recorder.record r ctx9 (Trace.Note "b");
  checki "q7 ring" 1 (List.length (Flight_recorder.entries ~query:7 r));
  checki "q9 ring" 1 (List.length (Flight_recorder.entries ~query:9 r));
  checki "global ring" 2 (List.length (Flight_recorder.entries r));
  Flight_recorder.record r ctx7 degraded_event;
  Flight_recorder.record r ctx7 degraded_event;
  (* Same (reason, query): one dump only. *)
  checki "dump dedup" 1 (List.length (Flight_recorder.dumps r));
  Flight_recorder.record r ctx9 (Trace.Breaker { state = "open"; round = 3 });
  let dumps = Flight_recorder.dumps r in
  checki "distinct anomalies dump" 2 (List.length dumps);
  checki "on_dump fired per dump" 2 (List.length !fired);
  let d7 = List.hd dumps in
  Alcotest.(check string) "reason" "degraded-forced" d7.Flight_recorder.reason;
  checkb "attributed" true (d7.Flight_recorder.query = Some 7);
  checkb "tenant carried" true (d7.Flight_recorder.tenant = Some "acme");
  (* The q7 dump holds only q7's history. *)
  List.iter
    (fun (_, c, _) -> checkb "dump is per-query" true (c.Trace.query = Some 7))
    d7.Flight_recorder.events;
  let json = Flight_recorder.dump_to_json d7 in
  checkb "chrome-trace document" true (contains json "\"traceEvents\"");
  checkb "query row named" true (contains json "query 7 (acme)");
  Alcotest.(check string)
    "filename" "flight-q7-degraded-forced.json"
    (Flight_recorder.dump_filename d7)

(* Rolling windows under a fake clock: totals age out, rates divide by
   the window, quantiles come from the windowed distribution. *)
let test_rolling_window () =
  let now = ref 0.0 in
  let spec = Rolling.spec ~window_seconds:10.0 ~slices:5 ~clock:(fun () -> !now) () in
  let c = Rolling.counter spec in
  Rolling.counter_add c 5.0;
  now := 4.0;
  Rolling.counter_add c 3.0;
  checkf 1e-9 "both inside the window" 8.0 (Rolling.counter_total c);
  checkf 1e-9 "rate = total / window" 0.8 (Rolling.counter_rate c);
  now := 11.0;
  checkf 1e-9 "first slice aged out" 3.0 (Rolling.counter_total c);
  now := 25.0;
  checkf 1e-9 "all history aged out" 0.0 (Rolling.counter_total c);
  let s = Rolling.series spec in
  Rolling.series_observe s 2.0;
  checkf 1e-9 "single observation is exact" 2.0 (Rolling.series_quantile s 0.5);
  now := 40.0;
  checki "series ages out too" 0 (Rolling.series_count s);
  checkb "idle quantile is nan" true
    (Float.is_nan (Rolling.series_quantile s 0.5))

(* The SLO tracker: per-tenant and aggregate reports, and the
   hand-labelled Prometheus family. *)
let test_slo_reports () =
  let now = ref 0.0 in
  let slo = Slo.create ~window_seconds:60.0 ~clock:(fun () -> !now) () in
  let sample tenant latency degraded shortfall =
    Slo.observe slo
      {
        Slo.tenant;
        latency_seconds = latency;
        probes = 10;
        degraded;
        rejections = 0;
        shortfall;
      }
  in
  sample "a" 0.1 false false;
  sample "a" 0.3 true true;
  sample "b" 0.2 false false;
  Alcotest.(check (list string)) "tenants" [ "a"; "b" ] (Slo.tenants slo);
  let ra = Slo.report slo "a" in
  checkf 1e-9 "requests" 2.0 ra.Slo.r_requests;
  checkf 1e-9 "degraded fraction" 0.5 ra.Slo.r_degraded;
  checkf 1e-9 "shortfalls" 1.0 ra.Slo.r_shortfalls;
  let all = Slo.overall slo in
  checkf 1e-9 "aggregate requests" 3.0 all.Slo.r_requests;
  checkf 1e-9 "aggregate probe rate" 0.5 all.Slo.r_probe_rate;
  (* Rejected-at-admission requests carry no latency: counted, not
     polluting the quantiles. *)
  Slo.observe slo
    {
      Slo.tenant = "a";
      latency_seconds = nan;
      probes = 0;
      degraded = false;
      rejections = 1;
      shortfall = false;
    };
  let ra = Slo.report slo "a" in
  checkf 1e-9 "rejection counted" 1.0 ra.Slo.r_rejections;
  checkf 1e-9 "request counted" 3.0 ra.Slo.r_requests;
  checkb "latency quantile unpolluted" true (ra.Slo.r_p99 <= 0.3 +. 1e-9);
  let prom = Slo.to_prometheus slo in
  checkb "tenant label" true (contains prom "qaq_slo_request_rate{tenant=\"a\"}");
  checkb "aggregate label" true
    (contains prom "qaq_slo_shortfalls{tenant=\"_all\"}");
  checkb "help lines" true (contains prom "# TYPE qaq_slo_latency_p99_seconds gauge")

(* Histogram exposition across merge/diff: a window diff re-merged onto
   the earlier capture reproduces the later one exactly, down to the
   Prometheus text. *)
let test_prometheus_merge_diff () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat.seconds" in
  Metrics.observe h 1.0;
  Metrics.observe h 2.0;
  let s1 = Metrics.snapshot m in
  Metrics.observe h 3.0;
  Metrics.observe h 4.0;
  Metrics.observe h 5.0;
  let s2 = Metrics.snapshot m in
  let d = Metrics.diff ~later:s2 ~earlier:s1 in
  let dist_of s = Option.get (Metrics.dist_of s "lat.seconds") in
  let window = dist_of d in
  checki "window count" 3 window.Metrics.d_count;
  let merged = Metrics.merge_dist (dist_of s1) window in
  checkb "merge(earlier, diff) = later" true (merged = dist_of s2);
  Alcotest.(check string)
    "identical Prometheus exposition"
    (Metrics.to_prometheus s2)
    (Metrics.to_prometheus [ ("lat.seconds", Metrics.Dist merged) ]);
  let text = Metrics.to_prometheus s2 in
  checkb "count line" true (contains text "lat_seconds_count 5");
  checkb "sum line" true (contains text "lat_seconds_sum 15");
  checkb "+Inf bucket" true (contains text "le=\"+Inf\"} 5")

(* Snapshot atomicity under real concurrency: two domains hammer
   overlapping-key broker clients while the main domain snapshots the
   shared registry; the broker identity requests = admitted + coalesced
   + fresh_hits + rejected must hold in every single snapshot — a torn
   read between the grouped increments would break it. *)
let test_snapshot_hammer () =
  let obs = Obs.create () in
  let broker =
    Probe_broker.create ~obs ~batch_size:4 ~freshness:0.0 ~key:Fun.id
      (fun objs -> Array.map (fun k -> Probe_driver.Resolved k) objs)
  in
  let rounds = 300 in
  let worker tenant =
    Domain.spawn (fun () ->
        for i = 0 to rounds - 1 do
          let d = Probe_broker.client ~tenant broker in
          for k = 0 to 7 do
            Probe_driver.submit_outcome d ((i * 8 + k) mod 97) (fun _ -> ())
          done;
          Probe_driver.flush d
        done)
  in
  let a = worker "a" and b = worker "b" in
  let torn = ref 0 in
  let snapshots = ref 0 in
  let running = ref true in
  while !running do
    let s = Obs.snapshot obs in
    let count = Metrics.count_of s in
    if
      count Obs.Keys.broker_requests
      <> count Obs.Keys.broker_admitted
         + count Obs.Keys.broker_coalesced
         + count Obs.Keys.broker_fresh_hits
         + count Obs.Keys.broker_rejected
    then incr torn;
    incr snapshots;
    if !snapshots > 20000 then running := false;
    (* Stop once both workers are done (joining twice is an error, so
       poll cheaply via a final snapshot count check). *)
    if !snapshots mod 64 = 0 && Probe_broker.(stats broker).requests
       >= 2 * rounds * 8
    then running := false
  done;
  Domain.join a;
  Domain.join b;
  checki "no torn snapshot" 0 !torn;
  checkb "snapshots actually raced the workers" true (!snapshots > 0);
  let s = Probe_broker.stats broker in
  checki "final identity" s.Probe_broker.requests
    (s.Probe_broker.admitted + s.Probe_broker.coalesced
   + s.Probe_broker.fresh_hits + s.Probe_broker.rejected)

let suite =
  [
    ("traced query identical to untraced", `Quick,
     test_traced_identical_to_untraced);
    QCheck_alcotest.to_alcotest prop_recorder_ring;
    ("recorder anomaly dumps", `Quick, test_recorder_anomaly_dumps);
    ("rolling windows age out", `Quick, test_rolling_window);
    ("slo reports and prometheus family", `Quick, test_slo_reports);
    ("histogram exposition across merge/diff", `Quick,
     test_prometheus_merge_diff);
    ("snapshot atomicity under domains", `Quick, test_snapshot_hammer);
  ]
