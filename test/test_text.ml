(* Tests for the text substrate: edit distance, q-gram bounds and
   quality-aware document selection. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_distance_known_values () =
  checki "kitten/sitting" 3 (Edit_distance.distance "kitten" "sitting");
  checki "flaw/lawn" 2 (Edit_distance.distance "flaw" "lawn");
  checki "identical" 0 (Edit_distance.distance "same" "same");
  checki "empty left" 5 (Edit_distance.distance "" "hello");
  checki "empty right" 5 (Edit_distance.distance "hello" "");
  checki "both empty" 0 (Edit_distance.distance "" "")

let test_within_known_values () =
  checkb "within exact k" true (Edit_distance.within "kitten" "sitting" 3);
  checkb "below k" false (Edit_distance.within "kitten" "sitting" 2);
  checkb "zero threshold equal" true (Edit_distance.within "abc" "abc" 0);
  checkb "zero threshold diff" false (Edit_distance.within "abc" "abd" 0);
  checkb "length gap prunes" false (Edit_distance.within "ab" "abcdefgh" 3);
  Alcotest.check_raises "negative k"
    (Invalid_argument "Edit_distance.within: k < 0") (fun () ->
      ignore (Edit_distance.within "a" "b" (-1)))

let string_gen =
  QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 24))

let prop_distance_metric =
  QCheck2.Test.make ~name:"edit distance is a metric" ~count:200
    QCheck2.Gen.(triple string_gen string_gen string_gen)
    (fun (a, b, c) ->
      let d = Edit_distance.distance in
      d a b = d b a
      && (d a b = 0) = (a = b)
      && d a c <= d a b + d b c)

let prop_within_agrees_with_distance =
  QCheck2.Test.make ~name:"banded within agrees with full distance"
    ~count:300
    QCheck2.Gen.(triple string_gen string_gen (int_range 0 10))
    (fun (a, b, k) ->
      Edit_distance.within a b k = (Edit_distance.distance a b <= k))

let prop_qgram_bounds_sound =
  QCheck2.Test.make ~name:"q-gram bounds bracket the true distance"
    ~count:300
    QCheck2.Gen.(triple string_gen string_gen (int_range 1 4))
    (fun (a, b, q) ->
      let pa = Qgram.profile ~q a and pb = Qgram.profile ~q b in
      let d = Edit_distance.distance a b in
      Qgram.min_edit_distance pa pb <= d && d <= Qgram.max_edit_distance pa pb)

let corpus rng pattern n =
  (* A mix: near-duplicates of the pattern, moderately edited copies,
     and unrelated strings. *)
  let mutate s edits =
    let bytes = Bytes.of_string s in
    for _ = 1 to edits do
      if Bytes.length bytes > 0 then begin
        let i = Rng.int rng (Bytes.length bytes) in
        Bytes.set bytes i (Char.chr (Char.code 'a' + Rng.int rng 26))
      end
    done;
    Bytes.to_string bytes
  in
  Array.init n (fun id ->
      let u = Rng.uniform rng in
      let text =
        if u < 0.15 then mutate pattern (Rng.int rng 3)
        else if u < 0.3 then mutate pattern (4 + Rng.int rng 6)
        else
          String.init
            (20 + Rng.int rng 20)
            (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))
      in
      Text_query.make_item ~id ~q:3 text)

let test_classification_sound () =
  let rng = Rng.create 42 in
  let pattern = "approximate selection queries" in
  let items = corpus rng pattern 500 in
  let qy = Text_query.query ~q:3 ~pattern ~k:5 in
  let instance = Text_query.instance qy in
  Array.iter
    (fun item ->
      match instance.classify item with
      | Tvl.Yes -> checkb "yes sound" true (Text_query.in_exact qy item)
      | Tvl.No -> checkb "no sound" false (Text_query.in_exact qy item)
      | Tvl.Maybe -> ())
    items

let test_end_to_end_selection () =
  let rng = Rng.create 43 in
  let pattern = "quality aware query evaluation" in
  let items = corpus rng pattern 1000 in
  let qy = Text_query.query ~q:3 ~pattern ~k:6 in
  let requirements =
    Quality.requirements ~precision:1.0 ~recall:0.6 ~laxity:0.0
  in
  let report =
    Operator.run ~rng ~instance:(Text_query.instance qy)
      ~probe:(Probe_driver.scalar Text_query.probe) ~policy:Policy.stingy
      ~requirements
      (Operator.source_of_array items)
  in
  checkb "meets" true (Quality.meets report.guarantees requirements);
  List.iter
    (fun (e : Text_query.item Operator.emitted) ->
      checkb "every answer truly matches" true (Text_query.in_exact qy e.obj))
    report.answer;
  checkb "found matches" true (report.answer_size > 0);
  (* The sketches must have spared most distance computations: probes
     happen only on candidates the q-gram filter could not reject. *)
  checkb "sketch filter saves probes" true
    (report.counts.probes < Array.length items / 2)

let test_probe_resolves () =
  let item = Text_query.make_item ~id:0 ~q:2 "hello world" in
  let qy = Text_query.query ~q:2 ~pattern:"hello wurld" ~k:1 in
  let instance = Text_query.instance qy in
  let probed = Text_query.probe item in
  checkb "definite" true (Tvl.is_definite (instance.classify probed));
  Alcotest.(check (float 0.0)) "laxity zero" 0.0 (instance.laxity probed);
  checkb "correct verdict" true
    (Tvl.equal (instance.classify probed) Tvl.Yes)

let suite =
  [
    ("distance known values", `Quick, test_distance_known_values);
    ("within known values", `Quick, test_within_known_values);
    QCheck_alcotest.to_alcotest prop_distance_metric;
    QCheck_alcotest.to_alcotest prop_within_agrees_with_distance;
    QCheck_alcotest.to_alcotest prop_qgram_bounds_sound;
    ("classification sound on a corpus", `Quick, test_classification_sound);
    ("end-to-end document selection", `Quick, test_end_to_end_selection);
    ("probe resolves", `Quick, test_probe_resolves);
  ]
