(* Tests for the adaptive re-planning policy. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let requirements = Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:50.0

let run_with_adaptive ~seed ~data ~replan_every ~max_replans =
  let rng = Rng.create seed in
  let adaptive =
    Adaptive.create ~rng:(Rng.split rng) ~total:(Array.length data)
      ~max_laxity:100.0 ~requirements ~replan_every ~max_replans ()
  in
  let report =
    Operator.run ~rng ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe)
      ~policy:(Adaptive.policy adaptive) ~requirements
      (Operator.source_of_array data)
  in
  (adaptive, report)

let test_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad total" (Invalid_argument "Adaptive.create: total <= 0")
    (fun () ->
      ignore (Adaptive.create ~rng ~total:0 ~max_laxity:100.0 ~requirements ()));
  Alcotest.check_raises "bad period"
    (Invalid_argument "Adaptive.create: replan_every < 1") (fun () ->
      ignore
        (Adaptive.create ~rng ~total:10 ~max_laxity:100.0 ~requirements
           ~replan_every:0 ()))

let test_replans_happen_and_are_bounded () =
  let data =
    Synthetic.generate (Rng.create 5)
      (Synthetic.config ~total:5000 ~f_y:0.2 ~f_m:0.2 ())
  in
  let adaptive, report = run_with_adaptive ~seed:6 ~data ~replan_every:500 ~max_replans:3 in
  checkb "some replans" true (Adaptive.replans adaptive >= 1);
  checkb "bounded" true (Adaptive.replans adaptive <= 3);
  checkb "observed stream" true (Adaptive.observed adaptive > 0);
  checkb "still sound" true (Quality.meets report.guarantees requirements)

let test_soundness_unaffected () =
  (* Adaptivity must never break guarantees, whatever it converges to. *)
  List.iter
    (fun seed ->
      let data =
        Synthetic.generate (Rng.create seed)
          (Synthetic.config ~total:2000 ~f_y:0.3 ~f_m:0.3 ())
      in
      let _, report = run_with_adaptive ~seed ~data ~replan_every:300 ~max_replans:5 in
      checkb "sound" true (Quality.meets report.guarantees requirements);
      let answer_in_exact =
        List.length
          (List.filter (fun e -> Synthetic.in_exact e.Operator.obj) report.answer)
      in
      let actual_p =
        Quality.Diagnostics.precision ~answer_size:report.answer_size
          ~answer_in_exact
      in
      checkb "actual precision dominates" true
        (actual_p >= report.guarantees.precision -. 1e-9))
    [ 1; 2; 3; 4; 5 ]

let test_adapts_to_misestimated_workload () =
  (* Static QaQ solved with a badly wrong prior (f_m far too low) versus
     the adaptive policy starting from the same wrong prior.  Averaged
     over several datasets the adaptive run should not lose, and it
     should improve on the static one for most seeds. *)
  let wrong_prior =
    let spec = Region_model.uniform_spec ~f_y:0.05 ~f_m:0.02 ~max_laxity:100.0 in
    (Solver.solve (Solver.problem ~total:10000 ~spec ~requirements ())).params
  in
  let cost_static, cost_adaptive =
    List.fold_left
      (fun (s_acc, a_acc) seed ->
        let data =
          Synthetic.generate (Rng.create seed)
            (Synthetic.config ~total:10000 ~f_y:0.2 ~f_m:0.4 ())
        in
        let rng = Rng.create (seed + 100) in
        let static_report =
          Operator.run ~rng ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe)
            ~policy:(Policy.qaq wrong_prior) ~requirements
            (Operator.source_of_array data)
        in
        let adaptive =
          Adaptive.create ~rng:(Rng.split rng) ~total:(Array.length data)
            ~max_laxity:100.0 ~requirements ~replan_every:500 ~max_replans:6
            ~initial:wrong_prior ()
        in
        let adaptive_report =
          Operator.run ~rng ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe)
            ~policy:(Adaptive.policy adaptive) ~requirements
            (Operator.source_of_array data)
        in
        ( s_acc +. Operator.cost Cost_model.paper static_report,
          a_acc +. Operator.cost Cost_model.paper adaptive_report ))
      (0.0, 0.0) [ 11; 12; 13; 14; 15 ]
  in
  checkb
    (Printf.sprintf "adaptive %.0f <= static %.0f" cost_adaptive cost_static)
    true
    (cost_adaptive <= cost_static *. 1.02)

let test_bulk_jump_replans_once () =
  (* Regression for the replan stampede: when reads jump past several
     window boundaries at once (bulk parallel chunks), the policy must
     re-solve exactly once and advance [next_replan_at] past the jump —
     not once per skipped window on essentially identical histograms. *)
  let adaptive =
    Adaptive.create ~rng:(Rng.create 31) ~total:10_000 ~max_laxity:100.0
      ~requirements ~replan_every:100 ~max_replans:50 ()
  in
  let decide =
    match Adaptive.policy adaptive with
    | Policy.Custom f -> f
    | _ -> Alcotest.fail "adaptive policy is a Custom policy"
  in
  let counters = Counters.create ~total:10_000 in
  let step () =
    ignore
      (decide ~requirements ~counters ~verdict:Tvl.Yes ~laxity:10.0
         ~success:0.5)
  in
  (* Jump reads in bulk across nine window boundaries: 0 -> 949. *)
  for _ = 1 to 949 do Counters.saw_no counters done;
  step ();
  checki "exactly one re-solve for the whole jump" 1
    (Adaptive.replans adaptive);
  (* Still inside the same window: no further re-solve. *)
  step ();
  checki "no second re-solve before the next boundary" 1
    (Adaptive.replans adaptive);
  (* Crossing the next boundary (reads 949 -> 1000) re-solves once. *)
  for _ = 1 to 51 do Counters.saw_no counters done;
  step ();
  checki "one re-solve at the next boundary" 2 (Adaptive.replans adaptive);
  step ();
  checki "and only one" 2 (Adaptive.replans adaptive)

let test_current_params_evolve () =
  let data =
    Synthetic.generate (Rng.create 21)
      (Synthetic.config ~total:4000 ~f_y:0.1 ~f_m:0.5 ())
  in
  let rng = Rng.create 22 in
  let initial = Policy.params ~s3:1.0 ~s5:1.0 ~p_py:0.0 ~p_fm:0.0 in
  let adaptive =
    Adaptive.create ~rng:(Rng.split rng) ~total:4000 ~max_laxity:100.0
      ~requirements ~replan_every:400 ~max_replans:4 ~initial ()
  in
  checkb "starts at initial" true (Adaptive.current_params adaptive = initial);
  let _ =
    Operator.run ~rng ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe)
      ~policy:(Adaptive.policy adaptive) ~requirements
      (Operator.source_of_array data)
  in
  checkb "params moved" true (Adaptive.current_params adaptive <> initial);
  checki "replans counted" (Adaptive.replans adaptive) (Adaptive.replans adaptive)

let suite =
  [
    ("validation", `Quick, test_validation);
    ("replans happen and are bounded", `Quick, test_replans_happen_and_are_bounded);
    ("soundness unaffected", `Quick, test_soundness_unaffected);
    ("adapts to misestimated workload", `Slow, test_adapts_to_misestimated_workload);
    ("bulk read jump re-solves once", `Quick, test_bulk_jump_replans_once);
    ("params evolve", `Quick, test_current_params_evolve);
  ]
