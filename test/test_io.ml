(* Tests for CSV encoding and dataset persistence. *)

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let test_escape () =
  checks "plain untouched" "hello" (Csv.escape_field "hello");
  checks "comma quoted" "\"a,b\"" (Csv.escape_field "a,b");
  checks "quote doubled" "\"he said \"\"hi\"\"\"" (Csv.escape_field "he said \"hi\"");
  checks "newline quoted" "\"a\nb\"" (Csv.escape_field "a\nb")

let test_row_roundtrip () =
  let rows =
    [
      [ "id"; "name"; "note" ];
      [ "1"; "plain"; "nothing special" ];
      [ "2"; "with,comma"; "and \"quotes\"" ];
      [ "3"; "multi\nline"; "" ];
    ]
  in
  Alcotest.(check (list (list string)))
    "roundtrip" rows
    (Csv.decode (Csv.encode rows))

let test_decode_variants () =
  Alcotest.(check (list (list string)))
    "crlf" [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Csv.decode "a,b\r\nc,d\r\n");
  Alcotest.(check (list string)) "single row" [ "x"; "y" ] (Csv.decode_row "x,y");
  Alcotest.(check (list (list string))) "empty text" [] (Csv.decode "");
  Alcotest.(check (list (list string)))
    "empty fields" [ [ ""; ""; "" ] ] (Csv.decode ",,\n");
  Alcotest.check_raises "unterminated quote"
    (Csv.Parse_error { offset = 0; reason = "unterminated quoted field" })
    (fun () -> ignore (Csv.decode "\"abc"))

let test_decode_unterminated_quote () =
  (* The reported offset is that of the opening quote, even when the
     bad field starts mid-text or spans line breaks. *)
  let check_offset name text offset =
    Alcotest.check_raises name
      (Csv.Parse_error { offset; reason = "unterminated quoted field" })
      (fun () -> ignore (Csv.decode text))
  in
  check_offset "at start" "\"abc" 0;
  check_offset "mid-row" "a,b,\"oops" 4;
  check_offset "later row" "a,b\nc,\"un\nterminated" 6;
  (* A doubled quote does not terminate the field. *)
  check_offset "escaped quote only" "\"he said \"\"hi" 0;
  (* Properly terminated fields must not raise. *)
  Alcotest.(check (list (list string)))
    "terminated ok"
    [ [ "a"; "b c" ] ]
    (Csv.decode "a,\"b c\"\n")

let test_file_roundtrip () =
  let path = Filename.temp_file "imprecise_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let rows = [ [ "a"; "b" ]; [ "1"; "2,3" ] ] in
      Csv.write_file path rows;
      Alcotest.(check (list (list string))) "file roundtrip" rows (Csv.read_file path))

let test_synthetic_roundtrip () =
  let data =
    Synthetic.generate (Rng.create 5) (Synthetic.config ~total:300 ())
  in
  let back = Dataset_io.synthetic_of_rows (Dataset_io.synthetic_to_rows data) in
  Alcotest.(check int) "length" (Array.length data) (Array.length back);
  Array.iteri
    (fun i (o : Synthetic.obj) ->
      let b : Synthetic.obj = back.(i) in
      checkb "identical" true
        (o.id = b.id && Tvl.equal o.label b.label && o.laxity = b.laxity
        && o.success = b.success && o.probe_yes = b.probe_yes
        && o.resolved = b.resolved))
    data

let test_synthetic_file_roundtrip () =
  let path = Filename.temp_file "imprecise_syn" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let data =
        Synthetic.generate (Rng.create 6) (Synthetic.config ~total:100 ())
      in
      Dataset_io.write_synthetic path data;
      let back = Dataset_io.read_synthetic path in
      checkb "same exact-set size" true
        (Synthetic.exact_size data = Synthetic.exact_size back))

let test_synthetic_bad_input () =
  Alcotest.check_raises "bad header"
    (Failure "Dataset_io: unexpected header nope") (fun () ->
      ignore (Dataset_io.synthetic_of_rows [ [ "nope" ] ]));
  let rows = [ Dataset_io.synthetic_header; [ "1"; "YES"; "x"; "1"; "1"; "0" ] ] in
  Alcotest.check_raises "bad float"
    (Failure "Dataset_io: bad float in laxity: \"x\"") (fun () ->
      ignore (Dataset_io.synthetic_of_rows rows))

let test_records_roundtrip () =
  let records =
    Interval_data.uniform_intervals (Rng.create 7) ~n:200
      ~value_range:(Interval.make 0.0 100.0) ~max_width:10.0
  in
  let back = Dataset_io.records_of_rows (Dataset_io.records_to_rows records) in
  Alcotest.(check int) "length" 200 (Array.length back);
  Array.iteri
    (fun i (r : Interval_data.record) ->
      let b : Interval_data.record = back.(i) in
      checkb "identical" true
        (r.id = b.id && r.truth = b.truth
        && Interval.equal (Uncertain.support r.belief) (Uncertain.support b.belief)))
    records

let test_records_reject_gaussian () =
  let records =
    Interval_data.gaussian_beliefs (Rng.create 8) ~n:1 ~mean:0.0 ~stddev:1.0
      ~noise:0.5
  in
  Alcotest.check_raises "gaussian rejected"
    (Invalid_argument
       "Dataset_io.records_to_rows: Gaussian beliefs are not representable \
        in the flat schema") (fun () ->
      ignore (Dataset_io.records_to_rows records))

(* Arbitrary strings — including quotes, commas, newlines, CRs — must
   round-trip through encode/decode. *)
let prop_csv_roundtrip =
  let cell_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; ' ' ]) (int_range 0 12))
  in
  QCheck2.Test.make ~name:"csv encode/decode roundtrip" ~count:300
    QCheck2.Gen.(list_size (int_range 1 6) (list_size (int_range 1 5) cell_gen))
    (fun rows ->
      (* A row of all-empty cells at the end is indistinguishable from a
         trailing newline; normalise by appending a sentinel cell. *)
      let rows = List.map (fun r -> r @ [ "end" ]) rows in
      Csv.decode (Csv.encode rows) = rows)

let suite =
  [
    ("field escaping", `Quick, test_escape);
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
    ("row roundtrip", `Quick, test_row_roundtrip);
    ("decode variants", `Quick, test_decode_variants);
    ("unterminated quoted field", `Quick, test_decode_unterminated_quote);
    ("file roundtrip", `Quick, test_file_roundtrip);
    ("synthetic roundtrip", `Quick, test_synthetic_roundtrip);
    ("synthetic file roundtrip", `Quick, test_synthetic_file_roundtrip);
    ("synthetic bad input", `Quick, test_synthetic_bad_input);
    ("records roundtrip", `Quick, test_records_roundtrip);
    ("records reject gaussian", `Quick, test_records_reject_gaussian);
  ]
