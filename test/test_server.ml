(* End-to-end tests of the qaq-server core over its line protocol: the
   telemetry stack exercised the way a real deployment sees it — a
   forced fault plan tripping the breaker must surface as an attributed
   flight-recorder dump, HEALTH/SLO must reflect the damage, and
   telemetry must never change an answer. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Drive one protocol session through temp files (pipes could deadlock
   on a RECORDER dump larger than the pipe buffer). *)
let session srv script =
  let in_path = Filename.temp_file "qaq-test-in" ".txt" in
  let out_path = Filename.temp_file "qaq-test-out" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove in_path with Sys_error _ -> ());
      try Sys.remove out_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc (l ^ "\n")) script;
      close_out oc;
      let inc = open_in in_path in
      let out = open_out out_path in
      let verdict =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr inc;
            close_out_noerr out)
          (fun () -> Server_core.serve srv inc out)
      in
      let inc = open_in out_path in
      let rec read acc =
        match input_line inc with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let lines = Fun.protect ~finally:(fun () -> close_in_noerr inc) (fun () -> read []) in
      (verdict, lines))

let kv line key =
  String.split_on_char ' ' line
  |> List.find_map (fun tok ->
         let prefix = key ^ "=" in
         if String.starts_with ~prefix tok then
           Some
             (String.sub tok (String.length prefix)
                (String.length tok - String.length prefix))
         else None)

let find_line lines prefix =
  match List.find_opt (String.starts_with ~prefix) lines with
  | Some l -> l
  | None -> Alcotest.failf "no %S line in: %s" prefix (String.concat " | " lines)

let base_config =
  { Server_core.default_config with c_total = 2000; c_seed = 2004 }

(* The acceptance path: a fault plan that fails every backend probe
   behind a breaker.  One query through the protocol must come back
   degraded with a trace ID, trip the breaker, and leave an
   automatically-dumped flight recording whose every event carries that
   query's trace ID — retrievable over RECORDER and written to disk. *)
let test_forced_anomaly_dumps () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qaq-test-dumps-%d" (Unix.getpid ()))
  in
  let srv =
    Server_core.create
      {
        base_config with
        c_fault_rate = 1.0;
        c_breaker = true;
        c_recorder_dir = Some dir;
      }
  in
  let verdict, lines =
    session srv
      [
        "QUERY tenant=acme seed=1 p=0.9 r=0.6";
        "RUN";
        "HEALTH";
        "SLO acme";
        "RECORDER last";
        "QUIT";
      ]
  in
  checkb "clean QUIT" true (verdict = `Quit);
  let result = find_line lines "RESULT " in
  let trace_id = int_of_string (Option.get (kv result "trace")) in
  Alcotest.(check (option string)) "ran degraded" (Some "true")
    (kv result "degraded");
  Alcotest.(check (option string)) "requirements missed" (Some "false")
    (kv result "met");
  let health = find_line lines "HEALTH " in
  Alcotest.(check (option string)) "breaker tripped" (Some "open")
    (kv health "breaker");
  Alcotest.(check (option string)) "one windowed request" (Some "1")
    (kv health "requests");
  Alcotest.(check (option string)) "shortfall counted" (Some "1")
    (kv health "shortfalls");
  checkb "dumps recorded" true (int_of_string (Option.get (kv health "dumps")) >= 1);
  let slo = find_line lines "SLO tenant=acme" in
  Alcotest.(check (option string)) "tenant shortfall" (Some "1")
    (kv slo "shortfalls");
  (* RECORDER over the protocol: the most recent anomaly dump is the
     failing query's, rendered as a chrome-trace document. *)
  let recorder = find_line lines "RECORDER " in
  Alcotest.(check (option string)) "dump attributed over the wire"
    (Some (string_of_int trace_id))
    (kv recorder "query");
  checkb "chrome-trace payload" true
    (List.exists (fun l -> contains l "\"traceEvents\"") lines);
  (* The breaker-open dump itself: every event stamped with the failing
     query's trace ID. *)
  let dumps =
    Flight_recorder.dumps (Option.get (Server_core.recorder srv))
  in
  let breaker_dump =
    match
      List.find_opt
        (fun d -> d.Flight_recorder.reason = "breaker-open")
        dumps
    with
    | Some d -> d
    | None -> Alcotest.fail "no breaker-open dump"
  in
  checkb "dump names the query" true
    (breaker_dump.Flight_recorder.query = Some trace_id);
  checkb "dump is non-empty" true
    (breaker_dump.Flight_recorder.events <> []);
  List.iter
    (fun (_, ctx, _) ->
      checkb "every event carries the failing trace ID" true
        (ctx.Trace.query = Some trace_id))
    breaker_dump.Flight_recorder.events;
  (* And it landed on disk as valid-enough JSON to name the anomaly. *)
  let files = Array.to_list (Sys.readdir dir) in
  checkb "breaker dump written" true
    (List.exists (fun f -> contains f "breaker-open") files);
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* Telemetry is read-only end to end: the same session against a
   recorder-off server and a full-telemetry server produces identical
   RESULT lines once the run-local fields (trace ID, wall time) are
   stripped. *)
let test_protocol_golden_telemetry_off_vs_on () =
  let script =
    [
      "QUERY tenant=a seed=11 p=0.9 r=0.6";
      "QUERY tenant=b seed=12 p=0.85 r=0.5 l=40";
      "RUN";
      "QUIT";
    ]
  in
  let strip line =
    String.split_on_char ' ' line
    |> List.filter (fun tok ->
           not
             (String.starts_with ~prefix:"trace=" tok
             || String.starts_with ~prefix:"elapsed=" tok))
    |> String.concat " "
  in
  let results cfg =
    let _, lines = session (Server_core.create cfg) script in
    List.filter_map
      (fun l ->
        if String.starts_with ~prefix:"RESULT " l then Some (strip l) else None)
      lines
  in
  let off = results { base_config with c_recorder = 0 } in
  let on = results { base_config with c_recorder = 512 } in
  checki "both ran" 2 (List.length off);
  Alcotest.(check (list string)) "identical answers over the wire" off on

(* Reject admission feeds the SLO rejection counter without polluting
   the latency quantiles. *)
let test_reject_admission_slo () =
  let srv =
    Server_core.create
      {
        base_config with
        c_capacity = Some 0;
        c_admission = Server_core.Reject;
      }
  in
  let _, lines =
    session srv [ "QUERY tenant=acme seed=1"; "RUN"; "SLO acme"; "QUIT" ]
  in
  ignore (find_line lines "REJECTED ");
  let slo = find_line lines "SLO tenant=acme" in
  Alcotest.(check (option string)) "request counted" (Some "1")
    (kv slo "requests");
  Alcotest.(check (option string)) "rejection counted" (Some "1")
    (kv slo "rejections");
  Alcotest.(check (option string)) "latency stays idle" (Some "nan")
    (kv slo "p50")

(* The pre-telemetry verbs still answer, and unknown input stays a
   protocol-level error. *)
let test_protocol_compat () =
  let srv = Server_core.create base_config in
  let _, lines =
    session srv
      [ "QUERY seed=3"; "RUN"; "STATS"; "TENANTS"; "METRICS"; "HEALTH";
        "bogus"; "QUIT" ]
  in
  ignore (find_line lines "QUEUED ");
  ignore (find_line lines "DONE ");
  ignore (find_line lines "STATS ");
  ignore (find_line lines "TENANT ");
  checkb "metrics JSON" true
    (List.exists (fun l -> contains l "qaq.broker.requests") lines);
  ignore (find_line lines "HEALTH ");
  ignore (find_line lines "ERR unknown command");
  ignore (find_line lines "BYE")

let suite =
  [
    ("forced anomaly dumps attributed recording", `Quick,
     test_forced_anomaly_dumps);
    ("protocol golden: telemetry off vs on", `Quick,
     test_protocol_golden_telemetry_off_vs_on);
    ("reject admission feeds slo", `Quick, test_reject_admission_slo);
    ("protocol compatibility", `Quick, test_protocol_compat);
  ]
