(* Smoke tests for the experiment report generators and a few
   cross-module failure paths not covered elsewhere. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let line_count s =
  List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s))

let test_opt_table_structure () =
  let sweep = Exp_config.varying_selectivity in
  let rendered = Text_table.render (Exp_report.opt_table sweep) in
  (* Title + 3 rules + header + one row per setting. *)
  checki "line count" (5 + List.length sweep.settings) (line_count rendered);
  checkb "has paper column" true (contains "paper W/|T|" rendered);
  List.iter
    (fun (s : Exp_config.setting) ->
      checkb ("row " ^ s.label) true (contains s.label rendered))
    sweep.settings

let test_trial_table_structure () =
  let sweep = Exp_config.varying_selectivity in
  let rng = Rng.create 8 in
  let rendered =
    Text_table.render (Exp_report.trial_table ~rng ~repetitions:1 sweep)
  in
  checki "line count" (5 + List.length sweep.settings) (line_count rendered);
  List.iter
    (fun name -> checkb name true (contains name rendered))
    [ "QaQ"; "Stingy"; "Greedy" ]

let test_quality_table_all_zero_for_enforced () =
  let rng = Rng.create 9 in
  let sweep =
    { Exp_config.varying_selectivity with
      settings = [ { Exp_config.default with label = "one" } ] }
  in
  let rendered =
    Text_table.render (Exp_report.quality_table ~rng ~repetitions:2 sweep)
  in
  checkb "rendered" true (contains "max p-viol" rendered)

(* A probe source that exhausts its retries mid-query: the run must
   complete anyway — each failed object degrades to a guarantee-aware
   write decision and the report carries an honest degradation summary —
   while the shared meter still reflects the work that was done. *)
let test_probe_failure_degrades () =
  let rng = Rng.create 10 in
  let data =
    Synthetic.generate rng (Synthetic.config ~total:500 ~f_y:0.0 ~f_m:1.0 ())
  in
  let source =
    Probe_source.create ~failure_rate:0.9 ~max_retries:0 ~rng:(Rng.create 11)
      Synthetic.probe
  in
  let meter = Cost_meter.create () in
  let report =
    Operator.run ~rng ~meter ~instance:Synthetic.instance
      ~probe:(Probe_source.driver source)
      ~policy:Policy.greedy
      ~requirements:(Quality.requirements ~precision:1.0 ~recall:1.0 ~laxity:0.0)
      (Operator.source_of_array data)
  in
  let d = report.Operator.degraded in
  checkb "probes failed permanently" true (d.Operator.failed_probes > 0);
  checkb "attempts recorded" true
    (d.Operator.failed_attempts >= d.Operator.failed_probes);
  checki "every failure fell back" d.Operator.failed_probes
    (d.Operator.degraded_forwards + d.Operator.degraded_ignores);
  checkb "before-snapshot captured" true (d.Operator.guarantees_before <> None);
  checkb "partial work metered" true ((Cost_meter.counts meter).reads > 0)

let test_jittered_latency_in_range () =
  let rng = Rng.create 12 in
  let source =
    Probe_source.create
      ~latency:(Probe_source.Jittered { base = 10.0; jitter = 5.0 })
      ~rng Fun.id
  in
  for i = 1 to 50 do
    ignore (Probe_source.probe source i)
  done;
  let s = Probe_source.stats source in
  checkb "latency within bounds" true
    (s.simulated_latency >= 500.0 && s.simulated_latency <= 750.0)

(* Band join streaming interface parity with collection. *)
let test_join_streaming () =
  let rng = Rng.create 13 in
  let gen () =
    Interval_data.uniform_intervals rng ~n:25
      ~value_range:(Interval.make 0.0 100.0) ~max_width:10.0
  in
  let left = gen () and right = gen () in
  let streamed = ref 0 in
  let report =
    Band_join.run ~rng:(Rng.create 14)
      ~emit:(fun _ -> incr streamed)
      ~collect:false
      ~requirements:(Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:10.0)
      ~epsilon:5.0 ~left ~right ()
  in
  checkb "nothing collected" true (report.answer = []);
  checki "stream matches size" report.answer_size !streamed

let suite =
  [
    ("opt table structure", `Slow, test_opt_table_structure);
    ("trial table structure", `Slow, test_trial_table_structure);
    ("quality table renders", `Slow, test_quality_table_all_zero_for_enforced);
    ("probe failure degrades", `Quick, test_probe_failure_degrades);
    ("jittered latency in range", `Quick, test_jittered_latency_in_range);
    ("join streaming parity", `Quick, test_join_streaming);
  ]
