(* Tests for probe sources and the sensor-network simulator. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_probe_source_basic () =
  let source = Probe_source.create (fun x -> x * 2) in
  checki "resolves" 10 (Probe_source.probe source 5);
  checki "again" 14 (Probe_source.probe source 7);
  let s = Probe_source.stats source in
  checki "probes" 2 s.probes;
  checki "attempts" 2 s.attempts;
  Alcotest.(check (float 0.0)) "no latency" 0.0 s.simulated_latency

let test_probe_source_latency () =
  let source = Probe_source.create ~latency:(Probe_source.Constant 3.0) Fun.id in
  ignore (Probe_source.probe source 1);
  ignore (Probe_source.probe source 2);
  Alcotest.(check (float 1e-9)) "latency accumulates" 6.0
    (Probe_source.stats source).simulated_latency;
  Probe_source.reset_stats source;
  checki "reset" 0 (Probe_source.stats source).probes

let test_probe_source_failures () =
  let rng = Rng.create 5 in
  let source =
    Probe_source.create ~failure_rate:0.5 ~max_retries:50 ~rng Fun.id
  in
  for i = 1 to 100 do
    checki "eventually succeeds" i (Probe_source.probe source i)
  done;
  let s = Probe_source.stats source in
  checki "100 probes" 100 s.probes;
  checkb "more attempts than probes" true (s.attempts > 100);
  (* Expected attempts/probe at p=0.5 is 2; allow wide slack. *)
  checkb "attempt ratio sane" true
    (s.attempts < 400)

let test_probe_source_exhausts_retries () =
  (* failure_rate just below 1 with zero retries fails almost surely on
     some attempt within a few tries. *)
  let rng = Rng.create 6 in
  let source =
    Probe_source.create ~failure_rate:0.99 ~max_retries:0 ~rng Fun.id
  in
  let failed = ref false in
  (try
     for i = 1 to 20 do
       ignore (Probe_source.probe source i)
     done
   with Probe_source.Probe_failed -> failed := true);
  checkb "a probe failed" true !failed

let test_probe_source_latency_per_attempt () =
  (* Latency is a property of the attempt, not the success: every retry
     of a flaky source pays the round trip again. *)
  let rng = Rng.create 21 in
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 2.0) ~failure_rate:0.5
      ~max_retries:50 ~rng Fun.id
  in
  for i = 1 to 50 do
    checki "resolves" i (Probe_source.probe source i)
  done;
  let s = Probe_source.stats source in
  checki "50 probes" 50 s.probes;
  checkb "retries happened" true (s.attempts > s.probes);
  (* Scalar probes wake the source once per attempt. *)
  checki "one wakeup per attempt" s.attempts s.batches;
  Alcotest.(check (float 1e-9))
    "latency = attempts * constant"
    (float_of_int s.attempts *. 2.0)
    s.simulated_latency

let test_probe_source_fails_only_after_retries () =
  (* Probe_failed may only surface once max_retries + 1 attempts have
     been spent on the element. *)
  let rng = Rng.create 22 in
  let source =
    Probe_source.create ~failure_rate:0.999999 ~max_retries:4 ~rng Fun.id
  in
  let raised =
    try
      ignore (Probe_source.probe source 1);
      false
    with Probe_source.Probe_failed -> true
  in
  checkb "failed" true raised;
  let s = Probe_source.stats source in
  checki "all retries spent first" 5 s.attempts;
  checki "no probe recorded" 0 s.probes

let test_probe_batch_accounting () =
  (* A clean batch is one wakeup: one latency sample, one batch count,
     however many elements ride along. *)
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 2.0) (fun x -> x * 2)
  in
  let out = Probe_source.probe_batch source [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (array int)) "order kept" [| 2; 4; 6; 8; 10 |] out;
  let s = Probe_source.stats source in
  checki "five probes" 5 s.probes;
  checki "five attempts" 5 s.attempts;
  checki "one wakeup" 1 s.batches;
  Alcotest.(check (float 1e-9)) "one round trip" 2.0 s.simulated_latency;
  checki "empty batch is free" 0
    (Probe_source.reset_stats source;
     ignore (Probe_source.probe_batch source [||]);
     (Probe_source.stats source).batches)

let test_probe_batch_partial_failure () =
  (* When some elements of a round fail, only those ride into the next
     round; the others' results are not lost, and order is kept. *)
  let rng = Rng.create 23 in
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 1.0) ~failure_rate:0.5
      ~max_retries:100 ~rng (fun x -> x + 100)
  in
  let input = Array.init 16 (fun i -> i) in
  let out = Probe_source.probe_batch source input in
  Alcotest.(check (array int))
    "all resolved in order"
    (Array.map (fun x -> x + 100) input)
    out;
  let s = Probe_source.stats source in
  checki "every element probed once" 16 s.probes;
  checkb "some elements retried" true (s.attempts > s.probes);
  checkb "retries grouped into rounds" true (s.batches < s.attempts);
  (* Each round pays latency once for the whole pending set. *)
  Alcotest.(check (float 1e-9))
    "latency per round"
    (float_of_int s.batches *. 1.0)
    s.simulated_latency

let test_probe_batch_retry_exhaustion () =
  let rng = Rng.create 24 in
  let source =
    Probe_source.create ~failure_rate:0.999999 ~max_retries:2 ~rng Fun.id
  in
  let raised =
    try
      ignore (Probe_source.probe_batch source [| 1; 2; 3 |]);
      false
    with Probe_source.Probe_failed -> true
  in
  checkb "failed after retries" true raised

let test_probe_source_driver () =
  (* Probe_source.driver delivers the batch path through Probe_driver:
     one wakeup per full batch. *)
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 3.0) (fun x -> x * 10)
  in
  let driver = Probe_source.driver ~batch_size:4 source in
  let results = ref [] in
  for i = 1 to 8 do
    Probe_driver.submit driver i (fun r -> results := r :: !results)
  done;
  Alcotest.(check (list int))
    "two auto-flushed batches, in order"
    [ 10; 20; 30; 40; 50; 60; 70; 80 ]
    (List.rev !results);
  checki "driver probes" 8 (Probe_driver.probes driver);
  checki "driver batches" 2 (Probe_driver.batches driver);
  let s = Probe_source.stats source in
  checki "source wakeups match batches" 2 s.batches;
  Alcotest.(check (float 1e-9)) "latency per batch" 6.0 s.simulated_latency

let test_probe_source_validation () =
  Alcotest.check_raises "rng required"
    (Invalid_argument "Probe_source.create: rng required for jitter or failures")
    (fun () -> ignore (Probe_source.create ~failure_rate:0.1 Fun.id));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Probe_source.create: failure_rate outside [0, 1)")
    (fun () -> ignore (Probe_source.create ~failure_rate:1.0 Fun.id))

let make_net ?(n = 200) ?(drift = 1.0) seed =
  Sensor_net.create (Rng.create seed) ~n
    ~value_range:(Interval.make 0.0 100.0)
    ~tolerance_range:(Interval.make 1.0 5.0)
    ~drift_stddev:drift

let test_sensor_net_replicas_sound () =
  let net = make_net 10 in
  for _ = 1 to 100 do
    Sensor_net.step net
  done;
  (* The invariant of the approximate-replication protocol: the truth is
     always inside the cached interval. *)
  Array.iter
    (fun (r : Sensor_net.reading) ->
      checkb "truth inside replica" true (Interval.contains r.cached r.current))
    (Sensor_net.snapshot net)

let test_sensor_net_transmissions () =
  let quiet = make_net ~drift:0.01 11 in
  let noisy = make_net ~drift:5.0 11 in
  for _ = 1 to 50 do
    Sensor_net.step quiet;
    Sensor_net.step noisy
  done;
  checkb "noisy drifts transmit more" true
    (Sensor_net.transmissions noisy > Sensor_net.transmissions quiet);
  checki "quiet barely transmits" 0 (Sensor_net.transmissions quiet)

let test_sensor_net_instance () =
  let net = make_net 12 in
  for _ = 1 to 20 do
    Sensor_net.step net
  done;
  let pred = Predicate.ge 50.0 in
  let instance = Sensor_net.instance pred in
  Array.iter
    (fun (r : Sensor_net.reading) ->
      (* YES/NO classifications must agree with ground truth. *)
      (match instance.classify r with
      | Tvl.Yes -> checkb "yes is true" true (Sensor_net.in_exact pred r)
      | Tvl.No -> checkb "no is false" false (Sensor_net.in_exact pred r)
      | Tvl.Maybe -> ());
      (* Probing yields a definite, zero-laxity reading. *)
      let probed = Sensor_net.probe r in
      checkb "probe definite" true (Tvl.is_definite (instance.classify probed));
      Alcotest.(check (float 0.0)) "probe laxity" 0.0 (instance.laxity probed))
    (Sensor_net.snapshot net)

let test_sensor_net_batch_radio () =
  (* Radio model: one wakeup per batch (c_b), one message per sensor
     (c_p). *)
  let net = make_net 13 in
  for _ = 1 to 20 do
    Sensor_net.step net
  done;
  let readings = Array.sub (Sensor_net.snapshot net) 0 6 in
  let probed = Sensor_net.probe_batch net readings in
  Array.iter
    (fun (r : Sensor_net.reading) -> checkb "resolved" true r.resolved)
    probed;
  checki "one wakeup" 1 (Sensor_net.probe_wakeups net);
  checki "one message per sensor" 6 (Sensor_net.probe_messages net);
  let driver = Sensor_net.batch_driver ~batch_size:3 net in
  Array.iter (fun r -> Probe_driver.submit driver r (fun _ -> ())) readings;
  checki "two more wakeups via driver" 3 (Sensor_net.probe_wakeups net);
  checki "messages accumulate" 12 (Sensor_net.probe_messages net)

(* Regression: two sources sharing one obs registry used to lump their
   stats onto the same [probe_source.*] names; with tier labels each
   keeps its own slice, retries are attributed to the tier that burned
   them, and resetting one source leaves the other untouched. *)
let test_probe_source_per_tier_stats () =
  let obs = Obs.create () in
  let proxy =
    Probe_source.create ~obs ~tier:"proxy" ~failure_rate:0.5 ~max_retries:50
      ~rng:(Rng.create 31) (fun x -> x + 1)
  in
  let oracle = Probe_source.create ~obs ~tier:"oracle" (fun x -> x * 2) in
  Alcotest.(check (option string))
    "proxy labelled" (Some "proxy") (Probe_source.tier proxy);
  Alcotest.(check (option string))
    "oracle labelled" (Some "oracle") (Probe_source.tier oracle);
  ignore (Probe_source.probe_batch proxy (Array.init 32 Fun.id));
  ignore (Probe_source.probe_batch oracle (Array.init 5 Fun.id));
  let sp = Probe_source.stats proxy and so = Probe_source.stats oracle in
  checki "proxy resolved all" 32 sp.probes;
  checki "oracle resolved all" 5 so.probes;
  checkb "proxy retried" true (sp.attempts > sp.probes);
  let snap = Obs.snapshot obs in
  let count = Metrics.count_of snap in
  checki "proxy slice mirrors the proxy source" sp.probes
    (count "probe_source.proxy.resolved");
  checki "oracle slice mirrors the oracle source" so.probes
    (count "probe_source.oracle.resolved");
  checki "proxy attempts on the proxy slice" sp.attempts
    (count "probe_source.proxy.attempts");
  checki "nothing lumped onto the unprefixed name" 0
    (count "probe_source.resolved");
  checki "retries attributed to the proxy tier" (sp.attempts - sp.probes)
    (count (Obs.Keys.tier_retried "proxy"));
  checki "oracle tier never retried" 0 (count (Obs.Keys.tier_retried "oracle"));
  Probe_source.reset_stats proxy;
  checki "proxy reset" 0 (Probe_source.stats proxy).probes;
  checki "oracle unaffected by the proxy's reset" 5
    (Probe_source.stats oracle).probes

(* Regression: retry rounds used to be lumped into probe_wakeups /
   probe_messages — the split separates pure retry traffic, and a tier
   label keeps a cascaded net's radio stats on its own names. *)
let test_sensor_net_retry_split () =
  let obs = Obs.create () in
  let net =
    Sensor_net.create ~obs ~tier:"radio"
      ~faults:(Fault_plan.make ~seed:40 ~transient_rate:0.4 ~max_retries:20 ())
      (Rng.create 41) ~n:24
      ~value_range:(Interval.make 0.0 100.0)
      ~tolerance_range:(Interval.make 1.0 5.0)
      ~drift_stddev:1.0
  in
  for _ = 1 to 10 do
    Sensor_net.step net
  done;
  let readings = Sensor_net.snapshot net in
  let outcomes = Sensor_net.probe_batch_outcomes net readings in
  Array.iter
    (fun oc ->
      match oc with
      | Probe_driver.Resolved _ -> ()
      | Probe_driver.Shrunk _ | Probe_driver.Failed _ ->
          Alcotest.fail "transient faults within budget must all resolve")
    outcomes;
  let wakeups = Sensor_net.probe_wakeups net in
  let messages = Sensor_net.probe_messages net in
  let retry_wakeups = Sensor_net.retry_wakeups net in
  let retry_messages = Sensor_net.retry_messages net in
  checkb "faults forced retry rounds" true (retry_wakeups > 0);
  (* one first round per batch; everything beyond it is retry traffic *)
  checki "retry wakeups are the rounds beyond the first" (wakeups - 1)
    retry_wakeups;
  checki "retry messages are the responses beyond the first round"
    (messages - Array.length readings)
    retry_messages;
  let snap = Obs.snapshot obs in
  let count = Metrics.count_of snap in
  checki "tier slice mirrors retry wakeups" retry_wakeups
    (count "sensor_net.radio.retry_wakeups");
  checki "tier slice mirrors retry messages" retry_messages
    (count "sensor_net.radio.retry_messages");
  checki "tier slice mirrors probe wakeups" wakeups
    (count "sensor_net.radio.probe_wakeups");
  checki "nothing lumped onto the unprefixed names" 0
    (count "sensor_net.probe_wakeups" + count "sensor_net.retry_wakeups");
  checki "retries attributed to the radio tier"
    (count Obs.Keys.fault_retried)
    (count (Obs.Keys.tier_retried "radio"))

let suite =
  [
    ("probe source basics", `Quick, test_probe_source_basic);
    ("probe source latency", `Quick, test_probe_source_latency);
    ("probe source failures and retries", `Quick, test_probe_source_failures);
    ("probe source retry exhaustion", `Quick, test_probe_source_exhausts_retries);
    ("latency charged per attempt", `Quick, test_probe_source_latency_per_attempt);
    ("failure only after retries spent", `Quick, test_probe_source_fails_only_after_retries);
    ("batch accounting", `Quick, test_probe_batch_accounting);
    ("batch partial failure retries", `Quick, test_probe_batch_partial_failure);
    ("batch retry exhaustion", `Quick, test_probe_batch_retry_exhaustion);
    ("batch driver integration", `Quick, test_probe_source_driver);
    ("probe source validation", `Quick, test_probe_source_validation);
    ("sensor replicas are sound", `Quick, test_sensor_net_replicas_sound);
    ("sensor transmissions scale with drift", `Quick, test_sensor_net_transmissions);
    ("sensor reading instance", `Quick, test_sensor_net_instance);
    ("sensor batch radio accounting", `Quick, test_sensor_net_batch_radio);
    ("per-tier probe source stats", `Quick, test_probe_source_per_tier_stats);
    ("sensor retry traffic split per tier", `Quick, test_sensor_net_retry_split);
  ]
