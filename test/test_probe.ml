(* Tests for probe sources and the sensor-network simulator. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_probe_source_basic () =
  let source = Probe_source.create (fun x -> x * 2) in
  checki "resolves" 10 (Probe_source.probe source 5);
  checki "again" 14 (Probe_source.probe source 7);
  let s = Probe_source.stats source in
  checki "probes" 2 s.probes;
  checki "attempts" 2 s.attempts;
  Alcotest.(check (float 0.0)) "no latency" 0.0 s.simulated_latency

let test_probe_source_latency () =
  let source = Probe_source.create ~latency:(Probe_source.Constant 3.0) Fun.id in
  ignore (Probe_source.probe source 1);
  ignore (Probe_source.probe source 2);
  Alcotest.(check (float 1e-9)) "latency accumulates" 6.0
    (Probe_source.stats source).simulated_latency;
  Probe_source.reset_stats source;
  checki "reset" 0 (Probe_source.stats source).probes

let test_probe_source_failures () =
  let rng = Rng.create 5 in
  let source =
    Probe_source.create ~failure_rate:0.5 ~max_retries:50 ~rng Fun.id
  in
  for i = 1 to 100 do
    checki "eventually succeeds" i (Probe_source.probe source i)
  done;
  let s = Probe_source.stats source in
  checki "100 probes" 100 s.probes;
  checkb "more attempts than probes" true (s.attempts > 100);
  (* Expected attempts/probe at p=0.5 is 2; allow wide slack. *)
  checkb "attempt ratio sane" true
    (s.attempts < 400)

let test_probe_source_exhausts_retries () =
  (* failure_rate just below 1 with zero retries fails almost surely on
     some attempt within a few tries. *)
  let rng = Rng.create 6 in
  let source =
    Probe_source.create ~failure_rate:0.99 ~max_retries:0 ~rng Fun.id
  in
  let failed = ref false in
  (try
     for i = 1 to 20 do
       ignore (Probe_source.probe source i)
     done
   with Probe_source.Probe_failed -> failed := true);
  checkb "a probe failed" true !failed

let test_probe_source_latency_per_attempt () =
  (* Latency is a property of the attempt, not the success: every retry
     of a flaky source pays the round trip again. *)
  let rng = Rng.create 21 in
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 2.0) ~failure_rate:0.5
      ~max_retries:50 ~rng Fun.id
  in
  for i = 1 to 50 do
    checki "resolves" i (Probe_source.probe source i)
  done;
  let s = Probe_source.stats source in
  checki "50 probes" 50 s.probes;
  checkb "retries happened" true (s.attempts > s.probes);
  (* Scalar probes wake the source once per attempt. *)
  checki "one wakeup per attempt" s.attempts s.batches;
  Alcotest.(check (float 1e-9))
    "latency = attempts * constant"
    (float_of_int s.attempts *. 2.0)
    s.simulated_latency

let test_probe_source_fails_only_after_retries () =
  (* Probe_failed may only surface once max_retries + 1 attempts have
     been spent on the element. *)
  let rng = Rng.create 22 in
  let source =
    Probe_source.create ~failure_rate:0.999999 ~max_retries:4 ~rng Fun.id
  in
  let raised =
    try
      ignore (Probe_source.probe source 1);
      false
    with Probe_source.Probe_failed -> true
  in
  checkb "failed" true raised;
  let s = Probe_source.stats source in
  checki "all retries spent first" 5 s.attempts;
  checki "no probe recorded" 0 s.probes

let test_probe_batch_accounting () =
  (* A clean batch is one wakeup: one latency sample, one batch count,
     however many elements ride along. *)
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 2.0) (fun x -> x * 2)
  in
  let out = Probe_source.probe_batch source [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (array int)) "order kept" [| 2; 4; 6; 8; 10 |] out;
  let s = Probe_source.stats source in
  checki "five probes" 5 s.probes;
  checki "five attempts" 5 s.attempts;
  checki "one wakeup" 1 s.batches;
  Alcotest.(check (float 1e-9)) "one round trip" 2.0 s.simulated_latency;
  checki "empty batch is free" 0
    (Probe_source.reset_stats source;
     ignore (Probe_source.probe_batch source [||]);
     (Probe_source.stats source).batches)

let test_probe_batch_partial_failure () =
  (* When some elements of a round fail, only those ride into the next
     round; the others' results are not lost, and order is kept. *)
  let rng = Rng.create 23 in
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 1.0) ~failure_rate:0.5
      ~max_retries:100 ~rng (fun x -> x + 100)
  in
  let input = Array.init 16 (fun i -> i) in
  let out = Probe_source.probe_batch source input in
  Alcotest.(check (array int))
    "all resolved in order"
    (Array.map (fun x -> x + 100) input)
    out;
  let s = Probe_source.stats source in
  checki "every element probed once" 16 s.probes;
  checkb "some elements retried" true (s.attempts > s.probes);
  checkb "retries grouped into rounds" true (s.batches < s.attempts);
  (* Each round pays latency once for the whole pending set. *)
  Alcotest.(check (float 1e-9))
    "latency per round"
    (float_of_int s.batches *. 1.0)
    s.simulated_latency

let test_probe_batch_retry_exhaustion () =
  let rng = Rng.create 24 in
  let source =
    Probe_source.create ~failure_rate:0.999999 ~max_retries:2 ~rng Fun.id
  in
  let raised =
    try
      ignore (Probe_source.probe_batch source [| 1; 2; 3 |]);
      false
    with Probe_source.Probe_failed -> true
  in
  checkb "failed after retries" true raised

let test_probe_source_driver () =
  (* Probe_source.driver delivers the batch path through Probe_driver:
     one wakeup per full batch. *)
  let source =
    Probe_source.create ~latency:(Probe_source.Constant 3.0) (fun x -> x * 10)
  in
  let driver = Probe_source.driver ~batch_size:4 source in
  let results = ref [] in
  for i = 1 to 8 do
    Probe_driver.submit driver i (fun r -> results := r :: !results)
  done;
  Alcotest.(check (list int))
    "two auto-flushed batches, in order"
    [ 10; 20; 30; 40; 50; 60; 70; 80 ]
    (List.rev !results);
  checki "driver probes" 8 (Probe_driver.probes driver);
  checki "driver batches" 2 (Probe_driver.batches driver);
  let s = Probe_source.stats source in
  checki "source wakeups match batches" 2 s.batches;
  Alcotest.(check (float 1e-9)) "latency per batch" 6.0 s.simulated_latency

let test_probe_source_validation () =
  Alcotest.check_raises "rng required"
    (Invalid_argument "Probe_source.create: rng required for jitter or failures")
    (fun () -> ignore (Probe_source.create ~failure_rate:0.1 Fun.id));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Probe_source.create: failure_rate outside [0, 1)")
    (fun () -> ignore (Probe_source.create ~failure_rate:1.0 Fun.id))

let make_net ?(n = 200) ?(drift = 1.0) seed =
  Sensor_net.create (Rng.create seed) ~n
    ~value_range:(Interval.make 0.0 100.0)
    ~tolerance_range:(Interval.make 1.0 5.0)
    ~drift_stddev:drift

let test_sensor_net_replicas_sound () =
  let net = make_net 10 in
  for _ = 1 to 100 do
    Sensor_net.step net
  done;
  (* The invariant of the approximate-replication protocol: the truth is
     always inside the cached interval. *)
  Array.iter
    (fun (r : Sensor_net.reading) ->
      checkb "truth inside replica" true (Interval.contains r.cached r.current))
    (Sensor_net.snapshot net)

let test_sensor_net_transmissions () =
  let quiet = make_net ~drift:0.01 11 in
  let noisy = make_net ~drift:5.0 11 in
  for _ = 1 to 50 do
    Sensor_net.step quiet;
    Sensor_net.step noisy
  done;
  checkb "noisy drifts transmit more" true
    (Sensor_net.transmissions noisy > Sensor_net.transmissions quiet);
  checki "quiet barely transmits" 0 (Sensor_net.transmissions quiet)

let test_sensor_net_instance () =
  let net = make_net 12 in
  for _ = 1 to 20 do
    Sensor_net.step net
  done;
  let pred = Predicate.ge 50.0 in
  let instance = Sensor_net.instance pred in
  Array.iter
    (fun (r : Sensor_net.reading) ->
      (* YES/NO classifications must agree with ground truth. *)
      (match instance.classify r with
      | Tvl.Yes -> checkb "yes is true" true (Sensor_net.in_exact pred r)
      | Tvl.No -> checkb "no is false" false (Sensor_net.in_exact pred r)
      | Tvl.Maybe -> ());
      (* Probing yields a definite, zero-laxity reading. *)
      let probed = Sensor_net.probe r in
      checkb "probe definite" true (Tvl.is_definite (instance.classify probed));
      Alcotest.(check (float 0.0)) "probe laxity" 0.0 (instance.laxity probed))
    (Sensor_net.snapshot net)

let test_sensor_net_batch_radio () =
  (* Radio model: one wakeup per batch (c_b), one message per sensor
     (c_p). *)
  let net = make_net 13 in
  for _ = 1 to 20 do
    Sensor_net.step net
  done;
  let readings = Array.sub (Sensor_net.snapshot net) 0 6 in
  let probed = Sensor_net.probe_batch net readings in
  Array.iter
    (fun (r : Sensor_net.reading) -> checkb "resolved" true r.resolved)
    probed;
  checki "one wakeup" 1 (Sensor_net.probe_wakeups net);
  checki "one message per sensor" 6 (Sensor_net.probe_messages net);
  let driver = Sensor_net.batch_driver ~batch_size:3 net in
  Array.iter (fun r -> Probe_driver.submit driver r (fun _ -> ())) readings;
  checki "two more wakeups via driver" 3 (Sensor_net.probe_wakeups net);
  checki "messages accumulate" 12 (Sensor_net.probe_messages net)

let suite =
  [
    ("probe source basics", `Quick, test_probe_source_basic);
    ("probe source latency", `Quick, test_probe_source_latency);
    ("probe source failures and retries", `Quick, test_probe_source_failures);
    ("probe source retry exhaustion", `Quick, test_probe_source_exhausts_retries);
    ("latency charged per attempt", `Quick, test_probe_source_latency_per_attempt);
    ("failure only after retries spent", `Quick, test_probe_source_fails_only_after_retries);
    ("batch accounting", `Quick, test_probe_batch_accounting);
    ("batch partial failure retries", `Quick, test_probe_batch_partial_failure);
    ("batch retry exhaustion", `Quick, test_probe_batch_retry_exhaustion);
    ("batch driver integration", `Quick, test_probe_source_driver);
    ("probe source validation", `Quick, test_probe_source_validation);
    ("sensor replicas are sound", `Quick, test_sensor_net_replicas_sound);
    ("sensor transmissions scale with drift", `Quick, test_sensor_net_transmissions);
    ("sensor reading instance", `Quick, test_sensor_net_instance);
    ("sensor batch radio accounting", `Quick, test_sensor_net_batch_radio);
  ]
