(* Golden determinism tests for the multicore scan pipeline: the engine
   must produce bit-for-bit identical results whatever the domain count.
   Every parallel stage evaluates only pure per-object functions and the
   decision loop stays sequential, so answers, guarantees, counts, costs
   and planner output must not move by a single bit between domains = 1
   and any other lane count. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let requirements = Quality.requirements ~precision:0.85 ~recall:0.6 ~laxity:60.0

let dataset seed =
  Synthetic.generate (Rng.create seed) (Synthetic.config ~total:6000 ())

let answer_ids (report : Synthetic.obj Operator.report) =
  List.map
    (fun (e : Synthetic.obj Operator.emitted) -> (e.obj.id, e.precise))
    report.answer

type fingerprint = {
  answer : (int * bool) list;
  guarantees : Quality.guarantees;
  counts : Cost_meter.counts;
  run_counts : Cost_meter.counts;
  yes_seen : int;
  maybe_ignored : int;
  answer_size : int;
  exhausted : bool;
  normalized_cost : float;
  plan_params : Policy.params option;
  plan_sample : int option;
}

let fingerprint (result : Synthetic.obj Engine.result) =
  {
    answer = answer_ids result.report;
    guarantees = result.report.guarantees;
    counts = result.counts;
    run_counts = result.report.counts;
    yes_seen = result.report.yes_seen;
    maybe_ignored = result.report.maybe_ignored;
    answer_size = result.report.answer_size;
    exhausted = result.report.exhausted;
    normalized_cost = result.normalized_cost;
    plan_params = Option.map (fun (p : Engine.plan) -> p.params) result.plan;
    plan_sample =
      Option.map (fun (p : Engine.plan) -> p.sample_size) result.plan;
  }

let run ~seed ~planning ~batch ~domains data =
  fingerprint
    (Engine.execute ~rng:(Rng.create seed) ~planning ~batch ~max_laxity:100.0
       ~domains ~instance:Synthetic.instance
       ~probe:(Probe_driver.of_scalar ~batch_size:batch Synthetic.probe)
       ~requirements data)

(* Structural equality is the point: every field, floats included, must
   be bitwise identical (no NaNs arise in these runs). *)
let check_same label a b = checkb label true (a = b)

let test_golden_across_domains () =
  let data = dataset 11 in
  let plannings =
    [
      ("fixed", Engine.Fixed Policy.stingy_params);
      ("sampled", Engine.default_planning);
    ]
  in
  List.iter
    (fun (pname, planning) ->
      List.iter
        (fun batch ->
          let baseline = run ~seed:21 ~planning ~batch ~domains:1 data in
          checkb
            (Printf.sprintf "%s B=%d baseline answers" pname batch)
            true
            (baseline.answer_size > 0);
          List.iter
            (fun domains ->
              let got = run ~seed:21 ~planning ~batch ~domains data in
              check_same
                (Printf.sprintf "%s B=%d domains=%d bit-for-bit" pname batch
                   domains)
                baseline got)
            [ 2; 4 ])
        [ 1; 4 ])
    plannings

let test_golden_adaptive () =
  let data = dataset 13 in
  let planning = Engine.default_planning in
  let base =
    Engine.execute ~rng:(Rng.create 5) ~planning ~adaptive:true
      ~max_laxity:100.0 ~domains:1 ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  let par =
    Engine.execute ~rng:(Rng.create 5) ~planning ~adaptive:true
      ~max_laxity:100.0 ~domains:2 ~instance:Synthetic.instance
      ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
  in
  check_same "adaptive run identical" (fingerprint base) (fingerprint par)

(* The laxity cap defaults to a data scan; that scan is also pooled and
   must not move the cap (and hence the plan) by a bit. *)
let test_golden_observed_cap () =
  let data = dataset 17 in
  let exec domains =
    fingerprint
      (Engine.execute ~rng:(Rng.create 7) ~domains
         ~instance:Synthetic.instance
         ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data)
  in
  check_same "observed-cap run identical" (exec 1) (exec 4)

let test_streaming_order () =
  let data = dataset 19 in
  let emitted domains =
    let acc = ref [] in
    let emit (e : Synthetic.obj Operator.emitted) =
      acc := (e.obj.id, e.precise) :: !acc
    in
    ignore
      (Engine.execute ~rng:(Rng.create 3)
         ~planning:(Engine.Fixed Policy.stingy_params) ~max_laxity:100.0
         ~domains ~emit ~instance:Synthetic.instance
         ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data);
    List.rev !acc
  in
  let base = emitted 1 in
  checkb "baseline stream non-empty" true (base <> []);
  check_same "emission order identical" base (emitted 2)

let test_parallel_metrics () =
  let data = dataset 23 in
  let snapshot domains =
    let obs = Obs.create () in
    let result =
      Engine.execute ~rng:(Rng.create 9) ~max_laxity:100.0 ~domains ~obs
        ~instance:Synthetic.instance
        ~probe:(Probe_driver.scalar Synthetic.probe) ~requirements data
    in
    (result, Obs.snapshot obs)
  in
  let seq, seq_snap = snapshot 1 in
  let par, par_snap = snapshot 2 in
  check_same "instrumented runs identical" (fingerprint seq) (fingerprint par);
  (* The qaq.* cost counters are part of the deterministic surface … *)
  List.iter
    (fun key ->
      checki
        (Printf.sprintf "%s identical across domains" key)
        (Metrics.count_of seq_snap key)
        (Metrics.count_of par_snap key))
    Obs.Keys.
      [ reads; probes; batches; writes_imprecise; writes_precise; sample_reads ];
  (* … while the parallel-only metrics exist exactly on the pooled run. *)
  checki "no chunks metered sequentially" 0
    (Metrics.count_of seq_snap Obs.Keys.parallel_chunks);
  checkb "chunks metered in parallel" true
    (Metrics.count_of par_snap Obs.Keys.parallel_chunks > 0);
  checkb "domain gauge recorded" true
    (match Metrics.get par_snap Obs.Keys.parallel_domains with
    | Some (Metrics.Level l) -> l = 2.0
    | _ -> false);
  checkb "busy gauges recorded" true
    (match Metrics.get par_snap (Obs.Keys.domain_busy 0) with
    | Some (Metrics.Level l) -> l >= 0.0
    | _ -> false)

let test_trial_run_parallel () =
  let rng = Rng.create 31 in
  let setting = Exp_config.default in
  let data = Synthetic.generate rng (Exp_config.workload setting) in
  let outcome domains =
    Exp_runner.trial_run ~rng:(Rng.create 41) ~batch:4 ~domains ~setting ~data
      Exp_runner.Qaq
  in
  check_same "trial outcome identical" (outcome 1) (outcome 3)

let test_parallel_configs () =
  let configs = List.init 9 (fun i () -> (i, i * i)) in
  check_same "configs in order"
    (List.init 9 (fun i -> (i, i * i)))
    (Exp_runner.parallel_configs ~domains:3 configs);
  check_same "sequential resolution"
    (List.init 9 (fun i -> (i, i * i)))
    (Exp_runner.parallel_configs ~domains:1 configs)

let suite =
  [
    ("golden across domains and batches", `Quick, test_golden_across_domains);
    ("golden adaptive run", `Quick, test_golden_adaptive);
    ("golden observed laxity cap", `Quick, test_golden_observed_cap);
    ("streaming emission order", `Quick, test_streaming_order);
    ("parallel metrics", `Quick, test_parallel_metrics);
    ("trial_run with domains", `Quick, test_trial_run_parallel);
    ("parallel_configs ordering", `Quick, test_parallel_configs);
  ]
