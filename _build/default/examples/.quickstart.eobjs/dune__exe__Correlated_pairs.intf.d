examples/correlated_pairs.mli:
