examples/ecg_patterns.ml: Array Cost_meter Format List Operator Paa Policy Quality Rng Time_series Ts_query Tvl
