examples/document_screening.ml: Array Bytes Char List Operator Policy Printf Quality Rng String Text_query Tvl
