examples/ecg_patterns.mli:
