examples/quickstart.mli:
