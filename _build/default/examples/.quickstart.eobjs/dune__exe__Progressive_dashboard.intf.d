examples/progressive_dashboard.mli:
