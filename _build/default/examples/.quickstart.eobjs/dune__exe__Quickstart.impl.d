examples/quickstart.ml: Array Cost_meter Cost_model Density Format Interval Interval_data List Operator Policy Predicate Quality Region_model Rng Selectivity Solver
