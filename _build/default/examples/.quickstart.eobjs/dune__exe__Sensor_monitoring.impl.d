examples/sensor_monitoring.ml: Format Interval List Operator Policy Predicate Probe_source Quality Rng Sensor_net
