examples/hottest_sensors.ml: Array Cost_meter Cost_model Interval Interval_data List Printf Quality Rng Top_k
