examples/moving_objects.ml: Array Cost_model Format Interval List Moving_object Operator Policy Quality Rect Rng
