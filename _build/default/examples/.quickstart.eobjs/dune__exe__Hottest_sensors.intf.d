examples/hottest_sensors.mli:
