examples/document_screening.mli:
