examples/progressive_dashboard.ml: Array Cost_model Exp_config Exp_runner Float List Operator Policy Printf Quality Rng Solver Stdlib String Synthetic
