examples/correlated_pairs.ml: Array Band_join Cost_model Interval Interval_data List Operator Policy Printf Quality Rng
