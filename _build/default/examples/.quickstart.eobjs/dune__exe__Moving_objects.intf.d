examples/moving_objects.mli:
