(* Band join: find correlated station pairs across two sensor networks.

   Two networks report interval-cached readings (e.g. temperature from
   network A, calibrated reference probes from network B).  An analyst
   wants pairs whose true readings agree within 2 degrees — a band join
   |a - b| <= 2 over the pair space.  Probing a station is expensive, but
   one probe serves every pair the station appears in, which is what
   makes quality-aware joins affordable (paper §7's future work, built
   in lib/join).

   Run with:  dune exec examples/correlated_pairs.exe *)

let () =
  let rng = Rng.create 42 in
  let station_values n =
    Interval_data.uniform_intervals rng ~n
      ~value_range:(Interval.make 10.0 40.0) ~max_width:3.0
  in
  let network_a = station_values 200 in
  let network_b = station_values 200 in
  let epsilon = 2.0 in
  Printf.printf "pair space: %d x %d = %d pairs; truly matching: %d\n"
    (Array.length network_a) (Array.length network_b)
    (Array.length network_a * Array.length network_b)
    (Band_join.exact_size ~epsilon network_a network_b);

  let requirements =
    Quality.requirements ~precision:0.95 ~recall:0.5 ~laxity:1.0
  in
  let report =
    Band_join.run ~rng ~policy:Policy.stingy ~requirements ~epsilon
      ~left:network_a ~right:network_b ()
  in
  Printf.printf
    "answer: %d pairs; guarantees p^G=%.3f r^G=%.3f l^max=%.2f\n"
    report.answer_size report.guarantees.precision report.guarantees.recall
    report.guarantees.max_laxity;
  Printf.printf
    "work: %d pair evaluations, %d station probes (%d pair-side requests \
     served by the cache)\n"
    report.counts.reads report.object_probes
    (report.probe_requests - report.object_probes);
  Printf.printf "cost W = %.0f (W/pair = %.3f)\n"
    (Band_join.cost Cost_model.paper report)
    (Band_join.cost Cost_model.paper report /. float_of_int report.pairs_total);

  (* Ground-truth check, possible because the generator keeps truths. *)
  let truly =
    List.length
      (List.filter
         (fun e -> Band_join.in_exact ~epsilon e.Operator.obj)
         report.answer)
  in
  let actual_precision =
    Quality.Diagnostics.precision ~answer_size:report.answer_size
      ~answer_in_exact:truly
  in
  Printf.printf "verified precision: %.3f (guaranteed >= %.3f)\n"
    actual_precision report.guarantees.precision;
  assert (actual_precision >= report.guarantees.precision -. 1e-9);

  (* What per-pair probing would have cost. *)
  let unshared =
    Band_join.run ~rng:(Rng.create 42) ~policy:Policy.stingy ~share_probes:false
      ~requirements ~epsilon ~left:network_a ~right:network_b ()
  in
  Printf.printf
    "without probe sharing the same answer quality costs W = %.0f (%.1fx more)\n"
    (Band_join.cost Cost_model.paper unshared)
    (Band_join.cost Cost_model.paper unshared
    /. Band_join.cost Cost_model.paper report)
