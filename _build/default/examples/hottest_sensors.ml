(* Top-k over imprecise readings: the k hottest sensors.

   A dashboard wants the 20 hottest of 5 000 interval-cached sensors.
   Certifying a sensor into the top-20 may require probing it — or
   probing a rival whose interval overlaps it.  The quality-aware loop
   certifies exactly as many members as the recall bound demands and
   leaves the rest of the field untouched.

   Run with:  dune exec examples/hottest_sensors.exe *)

let () =
  let rng = Rng.create 17 in
  let readings =
    Interval_data.uniform_intervals rng ~n:5000
      ~value_range:(Interval.make (-10.0) 45.0) ~max_width:3.0
  in
  let k = 20 in

  Printf.printf "field: %d sensors; want the %d hottest\n"
    (Array.length readings) k;
  let verdicts = Top_k.classify ~k readings in
  let counts = Top_k.verdict_counts verdicts in
  Printf.printf
    "before any probe: %d certain members, %d contenders, %d certainly out\n"
    counts.certain counts.open_ counts.impossible;

  List.iter
    (fun r_q ->
      let requirements =
        Quality.requirements ~precision:1.0 ~recall:r_q ~laxity:1.0
      in
      let report = Top_k.run ~requirements ~k readings in
      Printf.printf
        "  r_q = %-4g  answered %2d/%d members with %3d probes (W = %5.0f)\n"
        r_q (List.length report.answer) k report.counts.probes
        (Cost_meter.cost_of_counts Cost_model.paper report.counts))
    [ 0.5; 0.8; 1.0 ];

  (* Verify the exact answer against ground truth. *)
  let requirements = Quality.requirements ~precision:1.0 ~recall:1.0 ~laxity:0.0 in
  let report = Top_k.run ~requirements ~k readings in
  let expected =
    Top_k.exact_top_k ~k readings
    |> List.map (fun (r : Interval_data.record) -> r.id)
    |> List.sort compare
  in
  let got =
    report.answer
    |> List.map (fun (r : Interval_data.record) -> r.id)
    |> List.sort compare
  in
  assert (expected = got);
  Printf.printf
    "exact top-%d verified against ground truth (%d probes, vs %d sensors)\n" k
    report.counts.probes (Array.length readings)
