type spec = {
  f_y : float;
  f_m : float;
  max_laxity : float;
  density : Density.t;
}

let spec ~f_y ~f_m ~max_laxity ~density =
  if f_y < 0.0 || f_m < 0.0 || f_y +. f_m > 1.0 +. 1e-12 then
    invalid_arg "Region_model.spec: invalid selectivity fractions";
  if not (Float.is_finite max_laxity && max_laxity > 0.0) then
    invalid_arg "Region_model.spec: max_laxity <= 0";
  { f_y; f_m; max_laxity; density }

let uniform_spec ~f_y ~f_m ~max_laxity =
  spec ~f_y ~f_m ~max_laxity ~density:(Density.uniform ~max_laxity)

type fractions = {
  yes : float;
  maybe : float;
  yes_probed : float;
  yes_forwarded : float;
  maybe_probed : float;
  maybe_forwarded : float;
  maybe_probe_yes : float;
}

let fractions t ~laxity_bound (p : Policy.params) =
  let lq = laxity_bound in
  let yes_hi = t.density.yes_above lq in
  let yes_lo = Float.max 0.0 (1.0 -. yes_hi) in
  (* Region 3: MAYBE above the laxity bound with s > s3, probed. *)
  let r3 = t.density.maybe_region ~s_min:p.s3 ~l_min:lq ~l_max:t.max_laxity in
  (* Region 5: MAYBE below the bound with s > s5, probed. *)
  let r5 = t.density.maybe_region ~s_min:p.s5 ~l_min:(-1.0) ~l_max:lq in
  (* Region 4: the rest of the MAYBEs below the bound. *)
  let below_all = t.density.maybe_region ~s_min:0.0 ~l_min:(-1.0) ~l_max:lq in
  let r4_mass = Float.max 0.0 (below_all.mass -. r5.mass) in
  let p3 = r3.mass *. t.f_m in
  let p5 = r5.mass *. t.f_m in
  {
    yes = t.f_y;
    maybe = t.f_m;
    yes_probed = p.p_py *. yes_hi *. t.f_y;
    yes_forwarded = yes_lo *. t.f_y;
    maybe_probed = p3 +. p5;
    maybe_forwarded = p.p_fm *. r4_mass *. t.f_m;
    maybe_probe_yes = (r3.mean_s *. p3) +. (r5.mean_s *. p5);
  }

let answer_yes_rate f = f.yes_probed +. f.yes_forwarded +. f.maybe_probe_yes

let precision_estimate f =
  let alpha = answer_yes_rate f in
  let answer = alpha +. f.maybe_forwarded in
  if answer <= 0.0 then 1.0 else alpha /. answer

let uncertainty_rate f =
  f.yes +. f.maybe +. f.maybe_probe_yes -. f.maybe_probed -. f.maybe_forwarded

let unit_cost (c : Cost_model.t) f =
  c.c_r
  +. ((f.yes_probed +. f.maybe_probed) *. c.c_p)
  +. ((f.yes_forwarded +. f.maybe_forwarded) *. c.c_wi)
  +. ((f.yes_probed +. f.maybe_probe_yes) *. c.c_wp)

let pp_fractions ppf f =
  Format.fprintf ppf
    "Y=%.4f M=%.4f Yp=%.4f Yf=%.4f Mp=%.4f Mf=%.4f Mpy=%.4f" f.yes f.maybe
    f.yes_probed f.yes_forwarded f.maybe_probed f.maybe_forwarded
    f.maybe_probe_yes
