let better a b =
  match (a.Solver.feasible, b.Solver.feasible) with
  | true, false -> a
  | false, true -> b
  | true, true -> if a.Solver.cost <= b.Solver.cost then a else b
  | false, false -> if a.Solver.violation <= b.Solver.violation then a else b

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let search_box problem ~resolution (center : Policy.params) ~radius =
  let steps = resolution + 1 in
  let axis c =
    Array.init steps (fun i ->
        let t = float_of_int i /. float_of_int resolution in
        clamp01 (c -. radius +. (2.0 *. radius *. t)))
  in
  let s3s = axis center.s3
  and s5s = axis center.s5
  and p_pys = axis center.p_py
  and p_fms = axis center.p_fm in
  let best = ref None in
  Array.iter
    (fun s3 ->
      Array.iter
        (fun s5 ->
          Array.iter
            (fun p_py ->
              Array.iter
                (fun p_fm ->
                  let e =
                    Solver.evaluate problem (Policy.params ~s3 ~s5 ~p_py ~p_fm)
                  in
                  best :=
                    Some (match !best with None -> e | Some b -> better e b))
                p_fms)
            p_pys)
        s5s)
    s3s;
  match !best with Some e -> e | None -> assert false

let search ?(resolution = 10) ?(refinements = 2) problem =
  if resolution < 1 then invalid_arg "Grid.search: resolution < 1";
  let center = Policy.params ~s3:0.5 ~s5:0.5 ~p_py:0.5 ~p_fm:0.5 in
  let incumbent = ref (search_box problem ~resolution center ~radius:0.5) in
  let radius = ref (1.0 /. float_of_int resolution) in
  for _ = 1 to refinements do
    let refined =
      search_box problem ~resolution !incumbent.Solver.params ~radius:!radius
    in
    incumbent := better refined !incumbent;
    radius := !radius /. float_of_int resolution
  done;
  !incumbent
