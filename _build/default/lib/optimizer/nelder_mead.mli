(** Derivative-free minimisation (Nelder–Mead downhill simplex).

    Replaces the paper's AMPL/LOQO setup for the 4-parameter problem of
    §4.2.2.  The objective may be discontinuous (feasibility penalties);
    box constraints are handled by clamping candidate points into the
    box before evaluation. *)

type options = {
  max_iterations : int;  (** default 500 *)
  tolerance : float;
      (** stop when the simplex's objective spread falls below this
          (default 1e-10) *)
}

val default_options : options

type result = {
  point : float array;  (** the best point found (inside the box) *)
  value : float;
  iterations : int;
}

val minimize :
  ?options:options ->
  lower:float array ->
  upper:float array ->
  init:float array ->
  (float array -> float) ->
  result
(** [minimize ~lower ~upper ~init f] runs the simplex from an initial
    point (clamped into the box; the initial simplex steps 10 % of each
    box width, or 0.1 for degenerate widths).

    @raise Invalid_argument on dimension mismatches, an empty dimension,
    or [lower.(i) > upper.(i)]. *)
