type options = { max_iterations : int; tolerance : float }

let default_options = { max_iterations = 500; tolerance = 1e-10 }

type result = { point : float array; value : float; iterations : int }

(* Standard coefficients: reflection 1, expansion 2, contraction 1/2,
   shrink 1/2. *)
let alpha = 1.0
let gamma = 2.0
let rho = 0.5
let sigma = 0.5

let minimize ?(options = default_options) ~lower ~upper ~init f =
  let n = Array.length init in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty dimension";
  if Array.length lower <> n || Array.length upper <> n then
    invalid_arg "Nelder_mead.minimize: dimension mismatch";
  Array.iteri
    (fun i lo -> if lo > upper.(i) then invalid_arg "Nelder_mead.minimize: box")
    lower;
  let clamp x =
    Array.mapi (fun i v -> Float.min upper.(i) (Float.max lower.(i) v)) x
  in
  let eval x =
    let x = clamp x in
    (x, f x)
  in
  (* Initial simplex: the start plus one vertex per coordinate, stepped by
     10% of the box width. *)
  let vertices =
    Array.init (n + 1) (fun v ->
        let x = clamp (Array.copy init) in
        if v > 0 then begin
          let i = v - 1 in
          let width = upper.(i) -. lower.(i) in
          let step = if width > 0.0 then 0.1 *. width else 0.1 in
          let moved = if x.(i) +. step <= upper.(i) then x.(i) +. step else x.(i) -. step in
          x.(i) <- moved
        end;
        eval x)
  in
  let order () =
    Array.sort (fun (_, fa) (_, fb) -> Float.compare fa fb) vertices
  in
  order ();
  let iterations = ref 0 in
  let spread () =
    let _, best = vertices.(0) and _, worst = vertices.(n) in
    Float.abs (worst -. best)
  in
  let centroid_excluding_worst () =
    let c = Array.make n 0.0 in
    for v = 0 to n - 1 do
      let x, _ = vertices.(v) in
      for i = 0 to n - 1 do
        c.(i) <- c.(i) +. x.(i)
      done
    done;
    Array.map (fun s -> s /. float_of_int n) c
  in
  let combine a wa b wb = Array.mapi (fun i ai -> (wa *. ai) +. (wb *. b.(i))) a in
  while !iterations < options.max_iterations && spread () > options.tolerance do
    incr iterations;
    let c = centroid_excluding_worst () in
    let worst_x, worst_f = vertices.(n) in
    let _, best_f = vertices.(0) in
    let _, second_worst_f = vertices.(n - 1) in
    (* Reflection. *)
    let refl_x, refl_f = eval (combine c (1.0 +. alpha) worst_x (-.alpha)) in
    if refl_f < best_f then begin
      (* Expansion. *)
      let exp_x, exp_f = eval (combine c (1.0 +. gamma) worst_x (-.gamma)) in
      vertices.(n) <- (if exp_f < refl_f then (exp_x, exp_f) else (refl_x, refl_f))
    end
    else if refl_f < second_worst_f then vertices.(n) <- (refl_x, refl_f)
    else begin
      (* Contraction (outside if the reflected point improved on the
         worst, inside otherwise). *)
      let towards, towards_f =
        if refl_f < worst_f then (refl_x, refl_f) else (worst_x, worst_f)
      in
      let con_x, con_f = eval (combine c (1.0 -. rho) towards rho) in
      if con_f < towards_f then vertices.(n) <- (con_x, con_f)
      else begin
        (* Shrink towards the best vertex. *)
        let best_x, _ = vertices.(0) in
        for v = 1 to n do
          let x, _ = vertices.(v) in
          vertices.(v) <- eval (combine best_x (1.0 -. sigma) x sigma)
        done
      end
    end;
    order ()
  done;
  let point, value = vertices.(0) in
  { point; value; iterations = !iterations }
