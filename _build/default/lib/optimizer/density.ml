type region_stats = { mass : float; mean_s : float }

type t = {
  yes_above : float -> float;
  maybe_region : s_min:float -> l_min:float -> l_max:float -> region_stats;
}

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let uniform ~max_laxity =
  if not (Float.is_finite max_laxity && max_laxity > 0.0) then
    invalid_arg "Density.uniform: max_laxity <= 0";
  let laxity_fraction l_min l_max =
    let lo = Float.max 0.0 l_min and hi = Float.min max_laxity l_max in
    if hi <= lo then 0.0 else (hi -. lo) /. max_laxity
  in
  {
    yes_above = (fun x -> laxity_fraction x max_laxity);
    maybe_region =
      (fun ~s_min ~l_min ~l_max ->
        let s_min = clamp01 s_min in
        let mass = (1.0 -. s_min) *. laxity_fraction l_min l_max in
        (* Success uniform on (s_min, 1]: mean is the midpoint — exactly
           the paper's (s+1)/2 expected probe success. *)
        let mean_s = if mass = 0.0 then 0.0 else (s_min +. 1.0) /. 2.0 in
        { mass; mean_s });
  }

let of_estimate (e : Selectivity.estimate) =
  {
    yes_above = (fun x -> Histogram.Hist1d.mass_above e.yes_laxity x);
    maybe_region =
      (fun ~s_min ~l_min ~l_max ->
        let r =
          Histogram.Hist2d.region e.maybe_plane ~x_min:s_min ~y_min:l_min
            ~y_max:l_max
        in
        { mass = r.mass; mean_s = r.mean_x });
  }
