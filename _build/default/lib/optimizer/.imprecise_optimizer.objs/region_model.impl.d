lib/optimizer/region_model.ml: Cost_model Density Float Format Policy
