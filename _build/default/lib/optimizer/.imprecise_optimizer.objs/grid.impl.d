lib/optimizer/grid.ml: Array Float Policy Solver
