lib/optimizer/nelder_mead.mli:
