lib/optimizer/solver.ml: Array Buffer Cost_model Float Format List Nelder_mead Policy Printf Quality Region_model
