lib/optimizer/region_model.mli: Cost_model Density Format Policy
