lib/optimizer/adaptive.ml: Cost_model Counters Density Histogram Policy Quality Region_model Rng Selectivity Solver Tvl
