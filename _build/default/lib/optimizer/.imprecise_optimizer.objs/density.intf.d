lib/optimizer/density.mli: Selectivity
