lib/optimizer/density.ml: Float Histogram Selectivity
