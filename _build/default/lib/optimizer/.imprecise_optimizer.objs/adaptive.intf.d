lib/optimizer/adaptive.mli: Cost_model Policy Quality Rng
