lib/optimizer/nelder_mead.ml: Array Float
