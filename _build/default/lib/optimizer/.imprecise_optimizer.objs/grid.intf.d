lib/optimizer/grid.mli: Solver
