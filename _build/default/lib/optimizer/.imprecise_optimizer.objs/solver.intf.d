lib/optimizer/solver.mli: Cost_model Format Policy Quality Region_model
