(** Densities over the (s(o), l(o)) decision plane (paper §4.2).

    The optimizer needs, for YES objects, the fraction with laxity above a
    bound, and for MAYBE objects the mass and mean success probability of
    rectangular regions of the plane.  The paper develops its parameter
    setting under a uniformity assumption and notes that a histogram
    estimated from a sample could replace it; both are provided. *)

type region_stats = { mass : float; mean_s : float }
(** [mass]: fraction of MAYBE objects in the region; [mean_s]: their mean
    success probability (0 when the region is empty). *)

type t = {
  yes_above : float -> float;
      (** [yes_above x]: fraction of YES objects with laxity > x. *)
  maybe_region : s_min:float -> l_min:float -> l_max:float -> region_stats;
      (** MAYBE objects with [s > s_min] and [l_min < l <= l_max]. *)
}

val uniform : max_laxity:float -> t
(** The paper's assumption: laxity uniform on [\[0, L\]] for YES and MAYBE
    alike, success uniform on [\[0, 1\]] and independent of laxity.
    @raise Invalid_argument if [max_laxity <= 0]. *)

val of_estimate : Selectivity.estimate -> t
(** Histogram density from a pre-query sample — the §4.2 refinement. *)
