(** Brute-force grid search over the parameter cube.

    An independent cross-check for {!Solver.solve}: enumerate
    [(s3, s5, p_py, p_fm)] on a regular grid, optionally refine around the
    best cell.  Exponentially slower than Nelder–Mead but immune to local
    minima; tests assert the two agree to within grid resolution. *)

val search : ?resolution:int -> ?refinements:int -> Solver.problem ->
  Solver.evaluation
(** [search problem] evaluates an [(r+1)^4] grid ([resolution] [r]
    defaults to 10, i.e. steps of 0.1), then [refinements] times (default
    2) re-grids a shrunken cube around the incumbent.
    @raise Invalid_argument if [resolution < 1]. *)
