(** The closed-form expected-count model of §4.2.

    Given the decision-region parameters [(s3, s5, p_py, p_fm)], input
    composition [(f_y, f_m)] and a density over the decision plane, this
    module predicts — per object read — how many objects fall in each
    region and what the operator does with them:

    - region 6 ([YES, l > l_q^max]): probed with probability [p_py];
    - region 7 ([YES, l <= l_q^max]): forwarded;
    - region 3 ([MAYBE, l > l_q^max, s > s3]): probed;
    - region 2 (rest above the bound): ignored;
    - region 5 ([MAYBE, l <= l_q^max, s > s5]): probed;
    - region 4 (rest below the bound): forwarded with probability [p_fm].

    Probes of MAYBE objects succeed with the region's mean success
    probability — the paper's [(s3+1)/2] and [(s5+1)/2] under the uniform
    density.  Everything is per unit read, so all absolute quantities
    scale linearly with the number of objects read [R]. *)

type spec = {
  f_y : float;  (** fraction of YES objects in the input *)
  f_m : float;  (** fraction of MAYBE objects in the input *)
  max_laxity : float;  (** L, the largest laxity in the input *)
  density : Density.t;
}

val spec :
  f_y:float -> f_m:float -> max_laxity:float -> density:Density.t -> spec
(** @raise Invalid_argument if fractions are negative, sum above 1, or
    [max_laxity <= 0]. *)

val uniform_spec : f_y:float -> f_m:float -> max_laxity:float -> spec
(** [spec] with the uniform density over [\[0,1\] x \[0,L\]]. *)

(** Expected quantities per object read. *)
type fractions = {
  yes : float;  (** Y/R *)
  maybe : float;  (** M/R *)
  yes_probed : float;  (** Y_p/R *)
  yes_forwarded : float;  (** Y_f/R *)
  maybe_probed : float;  (** M_p/R *)
  maybe_forwarded : float;  (** M_f/R *)
  maybe_probe_yes : float;  (** M_py/R *)
}

val fractions : spec -> laxity_bound:float -> Policy.params -> fractions

val precision_estimate : fractions -> float
(** LHS of constraint (15): expected precision of the answer,
    [(Y_p + Y_f + M_py) / (Y_p + Y_f + M_py + M_f)]; 1 when the answer is
    expected empty. *)

val answer_yes_rate : fractions -> float
(** [α = (Y_p + Y_f + M_py)/R] — expected YES answers per object read. *)

val uncertainty_rate : fractions -> float
(** [β = (Y + M + M_py − M_p − M_f)/R] — expected growth per object read
    of the recall-guarantee denominator's "seen" part
    [|Y| + |M_s − A|]. *)

val unit_cost : Cost_model.t -> fractions -> float
(** Expected cost per object read:
    [c_r + (Y_p+M_p)c_p/R + (Y_f+M_f)c_wi/R + (Y_p+M_py)c_wp/R]. *)

val pp_fractions : Format.formatter -> fractions -> unit
