type 'a t = {
  rng : Rng.t;
  capacity : int;
  mutable seen : int;
  mutable store : 'a array;  (* grows to capacity, then stays *)
  mutable filled : int;
}

let create rng ~capacity =
  if capacity < 1 then invalid_arg "Reservoir.create: capacity < 1";
  { rng; capacity; seen = 0; store = [||]; filled = 0 }

let add t x =
  t.seen <- t.seen + 1;
  if t.filled < t.capacity then begin
    if Array.length t.store = 0 then t.store <- Array.make t.capacity x;
    t.store.(t.filled) <- x;
    t.filled <- t.filled + 1
  end
  else begin
    let j = Rng.int t.rng t.seen in
    if j < t.capacity then t.store.(j) <- x
  end

let seen t = t.seen
let contents t = Array.sub t.store 0 t.filled

let of_array rng ~capacity xs =
  let t = create rng ~capacity in
  Array.iter (add t) xs;
  contents t
