(** Reservoir sampling (Vitter's algorithm R).

    The optimizer's inputs — the selectivity fractions [f_y], [f_m]
    (§4.2.1) and the density [g(s(o), l(o))] (§4.2) — are estimated from a
    random sample of [T] taken before query evaluation.  A reservoir makes
    this a single sequential pass with O(k) memory, matching the on-line
    spirit of the operator. *)

type 'a t

val create : Rng.t -> capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val add : 'a t -> 'a -> unit
(** Offer one element of the stream. *)

val seen : 'a t -> int
(** Elements offered so far. *)

val contents : 'a t -> 'a array
(** The current sample, in no particular order.  Size
    [min capacity seen]. *)

val of_array : Rng.t -> capacity:int -> 'a array -> 'a array
(** One-shot sampling of an array. *)
