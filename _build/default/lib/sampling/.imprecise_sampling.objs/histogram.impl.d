lib/sampling/histogram.ml: Array Float Stdlib
