lib/sampling/selectivity.ml: Array Float Histogram Operator Rng Tvl
