lib/sampling/reservoir.ml: Array Rng
