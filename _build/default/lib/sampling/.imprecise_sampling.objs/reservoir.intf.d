lib/sampling/reservoir.mli: Rng
