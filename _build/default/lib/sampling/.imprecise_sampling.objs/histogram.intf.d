lib/sampling/histogram.mli:
