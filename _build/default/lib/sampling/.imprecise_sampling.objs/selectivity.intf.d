lib/sampling/selectivity.mli: Histogram Operator Rng
