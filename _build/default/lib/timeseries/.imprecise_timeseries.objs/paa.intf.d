lib/timeseries/paa.mli: Interval Time_series
