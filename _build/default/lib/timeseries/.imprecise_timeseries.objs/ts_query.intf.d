lib/timeseries/ts_query.mli: Interval Operator Paa Time_series
