lib/timeseries/time_series.ml: Array Float Format Rng
