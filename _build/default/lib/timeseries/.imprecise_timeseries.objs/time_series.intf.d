lib/timeseries/time_series.mli: Format Rng
