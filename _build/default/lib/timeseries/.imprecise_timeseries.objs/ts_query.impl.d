lib/timeseries/ts_query.ml: Array Interval Operator Paa Time_series
