lib/timeseries/paa.ml: Array Float Interval Time_series
