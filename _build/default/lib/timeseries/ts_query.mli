(** Similarity selection over archived time series (paper §1.1, §2.1).

    The query "find the patients whose ECG is within distance ε of
    pattern XYZ" evaluated over PAA sketches: the sketch's distance
    bounds classify each archived series YES/NO/MAYBE, the width of the
    bound interval is the laxity, and a probe fetches the precise series
    from the archive.  This is the paper's high-precision scenario: the
    selected candidates "must definitely" match, while recall may be
    modest. *)

type item = private {
  id : int;
  sketch : Paa.t;  (** what the query site stores *)
  archive : Time_series.t;  (** the precise series; reading it = probe *)
  resolved : bool;
}

val make_item : id:int -> segments:int -> Time_series.t -> item
(** Sketch a series for the archive. *)

(** A similarity query. *)
type query = { pattern : Time_series.t; epsilon : float }

val query : pattern:Time_series.t -> epsilon:float -> query
(** @raise Invalid_argument if [epsilon < 0]. *)

val distance_interval : query -> item -> Interval.t
(** Bounds on the item's true distance to the pattern (a point interval
    once resolved). *)

val instance : query -> item Operator.instance
(** Laxity is the width of the distance-bound interval; success assumes
    the true distance uniform within it (§4.1's recipe). *)

val probe : item -> item
(** Fetch the precise series; classification becomes definite and laxity
    drops to 0. *)

val in_exact : query -> item -> bool
(** Ground truth: is the precise series within ε of the pattern? *)

val exact_size : query -> item array -> int
