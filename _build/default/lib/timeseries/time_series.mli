(** Fixed-length real-valued time series.

    The storage-barrier scenario of §1.1: precise series (ECGs, sensor
    histories) are large and live in an archive; the query site keeps
    compressed versions and probes the archive for the precise series
    when needed. *)

type t

val of_array : float array -> t
(** @raise Invalid_argument on an empty array or non-finite values. *)

val length : t -> int
val get : t -> int -> float
val to_array : t -> float array

val euclidean_distance : t -> t -> float
(** @raise Invalid_argument on length mismatch. *)

val map : (float -> float) -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Generators} *)

val random_walk :
  Rng.t -> length:int -> start:float -> step_stddev:float -> t
(** Gaussian random walk — the stock synthetic series. *)

val with_motif :
  Rng.t -> base:t -> motif:t -> at:int -> amplitude:float -> t
(** [base] with [amplitude · motif] added starting at index [at]: plants a
    recognisable pattern (e.g. an arrhythmia motif in an ECG-like
    series).  @raise Invalid_argument if the motif does not fit. *)
