type t = {
  source_length : int;
  means : float array;
  mins : float array;
  maxs : float array;
  (* Segment i covers indices [starts.(i), starts.(i+1)). *)
  starts : int array;
}

let compress ~segments series =
  let n = Time_series.length series in
  if segments < 1 || segments > n then invalid_arg "Paa.compress: segments";
  let starts =
    Array.init (segments + 1) (fun i -> i * n / segments)
  in
  let means = Array.make segments 0.0 in
  let mins = Array.make segments infinity in
  let maxs = Array.make segments neg_infinity in
  for s = 0 to segments - 1 do
    let lo = starts.(s) and hi = starts.(s + 1) in
    let sum = ref 0.0 in
    for i = lo to hi - 1 do
      let v = Time_series.get series i in
      sum := !sum +. v;
      if v < mins.(s) then mins.(s) <- v;
      if v > maxs.(s) then maxs.(s) <- v
    done;
    means.(s) <- !sum /. float_of_int (hi - lo)
  done;
  { source_length = n; means; mins; maxs; starts }

let segments t = Array.length t.means
let source_length t = t.source_length

let check_segment t i =
  if i < 0 || i >= segments t then invalid_arg "Paa: segment index"

let segment_mean t i = check_segment t i; t.means.(i)
let segment_min t i = check_segment t i; t.mins.(i)
let segment_max t i = check_segment t i; t.maxs.(i)

let segment_of t idx =
  (* starts is sorted; linear scan is fine for the segment counts used
     here, but a binary search keeps reconstruction O(n log k)-free. *)
  let rec bsearch lo hi =
    if lo >= hi then lo - 1
    else begin
      let mid = (lo + hi) / 2 in
      if t.starts.(mid) <= idx then bsearch (mid + 1) hi else bsearch lo mid
    end
  in
  bsearch 1 (Array.length t.starts) - 0

let reconstruct t =
  Time_series.of_array
    (Array.init t.source_length (fun i -> t.means.(segment_of t i)))

let compression_ratio t =
  3.0 *. float_of_int (segments t) /. float_of_int t.source_length

let distance_bounds t q =
  if Time_series.length q <> t.source_length then
    invalid_arg "Paa.distance_bounds: length mismatch";
  let lb2 = ref 0.0 and ub2 = ref 0.0 in
  for s = 0 to segments t - 1 do
    for i = t.starts.(s) to t.starts.(s + 1) - 1 do
      let qi = Time_series.get q i in
      let below = t.mins.(s) -. qi and above = qi -. t.maxs.(s) in
      (* Point-wise: the true value lies in [min, max], so the distance
         to qi is at least its distance to the interval and at most the
         distance to the farther endpoint. *)
      let lo = Float.max 0.0 (Float.max below above) in
      let hi = Float.max (Float.abs (qi -. t.mins.(s))) (Float.abs (qi -. t.maxs.(s))) in
      lb2 := !lb2 +. (lo *. lo);
      ub2 := !ub2 +. (hi *. hi)
    done
  done;
  Interval.make (sqrt !lb2) (sqrt !ub2)

let value_bounds t i =
  if i < 0 || i >= t.source_length then invalid_arg "Paa.value_bounds: index";
  let s = segment_of t i in
  Interval.make t.mins.(s) t.maxs.(s)
