(** Piecewise Aggregate Approximation sketches with min/max envelopes.

    A series of length [n] is summarised by [k] equal segments, each
    keeping its mean, minimum and maximum — a compressed representation a
    fraction of the original's size (the paper's storage-barrier
    example).  The envelope yields {e exact} lower and upper bounds on
    the Euclidean distance between the original series and any precise
    query series, which is what turns a sketch into a classifiable
    imprecise object: distance predicates evaluate to YES/NO when the
    bound interval falls entirely on one side of the threshold and MAYBE
    otherwise. *)

type t

val compress : segments:int -> Time_series.t -> t
(** @raise Invalid_argument if [segments < 1] or exceeds the series
    length. *)

val segments : t -> int
val source_length : t -> int

val segment_mean : t -> int -> float
val segment_min : t -> int -> float
val segment_max : t -> int -> float

val reconstruct : t -> Time_series.t
(** The lossy reconstruction (each segment's mean, repeated). *)

val compression_ratio : t -> float
(** Stored floats of the sketch divided by those of the original
    (3k / n). *)

val distance_bounds : t -> Time_series.t -> Interval.t
(** [distance_bounds sketch q]: an interval certainly containing the
    Euclidean distance between the original series and [q].
    @raise Invalid_argument on length mismatch. *)

val value_bounds : t -> int -> Interval.t
(** Interval certainly containing the original value at one index. *)
