type t = float array

let of_array a =
  if Array.length a = 0 then invalid_arg "Time_series.of_array: empty";
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg "Time_series.of_array: non-finite value")
    a;
  Array.copy a

let length = Array.length
let get t i = t.(i)
let to_array = Array.copy

let euclidean_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Time_series.euclidean_distance: length mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt !acc

let map f t = Array.map f t
let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let pp ppf t =
  Format.fprintf ppf "[%d pts: %g..%g]" (Array.length t) t.(0)
    t.(Array.length t - 1)

let random_walk rng ~length ~start ~step_stddev =
  if length < 1 then invalid_arg "Time_series.random_walk: length < 1";
  let t = Array.make length start in
  for i = 1 to length - 1 do
    t.(i) <- t.(i - 1) +. Rng.gaussian rng ~mean:0.0 ~stddev:step_stddev
  done;
  t

let with_motif _rng ~base ~motif ~at ~amplitude =
  let n = Array.length base and m = Array.length motif in
  if at < 0 || at + m > n then invalid_arg "Time_series.with_motif: bounds";
  let t = Array.copy base in
  for i = 0 to m - 1 do
    t.(at + i) <- t.(at + i) +. (amplitude *. motif.(i))
  done;
  t
