type item = {
  id : int;
  sketch : Paa.t;
  archive : Time_series.t;
  resolved : bool;
}

let make_item ~id ~segments series =
  { id; sketch = Paa.compress ~segments series; archive = series; resolved = false }

type query = { pattern : Time_series.t; epsilon : float }

let query ~pattern ~epsilon =
  if epsilon < 0.0 then invalid_arg "Ts_query.query: epsilon < 0";
  { pattern; epsilon }

let distance_interval q item =
  if item.resolved then
    Interval.point (Time_series.euclidean_distance item.archive q.pattern)
  else Paa.distance_bounds item.sketch q.pattern

let instance q : item Operator.instance =
  {
    classify = (fun item -> Interval.classify_le (distance_interval q item) q.epsilon);
    laxity = (fun item -> Interval.width (distance_interval q item));
    success = (fun item -> Interval.success_le (distance_interval q item) q.epsilon);
  }

let probe item = { item with resolved = true }

let in_exact q item =
  Time_series.euclidean_distance item.archive q.pattern <= q.epsilon

let exact_size q items =
  Array.fold_left (fun acc i -> if in_exact q i then acc + 1 else acc) 0 items
