lib/predicate/real_set.ml: Float Format Interval List
