lib/predicate/predicate.mli: Format Interval Real_set Tvl Uncertain
