lib/predicate/real_set.mli: Format Interval
