lib/predicate/predicate.ml: Float Format Interval List Math_special Printf Real_set Tvl Uncertain
