type record = {
  id : int;
  belief : Uncertain.t;
  truth : float;
}

let instance pred : record Operator.instance =
  {
    classify = (fun r -> Predicate.classify pred r.belief);
    laxity = (fun r -> Uncertain.laxity r.belief);
    success = (fun r -> Predicate.success pred r.belief);
  }

let probe r = { r with belief = Uncertain.exact r.truth }
let in_exact pred r = Predicate.eval pred r.truth

let exact_set pred records =
  Array.to_list records |> List.filter (in_exact pred)

let exact_size pred records =
  Array.fold_left (fun acc r -> if in_exact pred r then acc + 1 else acc) 0 records

let uniform_intervals rng ~n ~value_range ~max_width =
  if n < 0 then invalid_arg "Interval_data.uniform_intervals: n < 0";
  if max_width <= 0.0 then
    invalid_arg "Interval_data.uniform_intervals: max_width <= 0";
  Array.init n (fun id ->
      let truth = Interval.sample rng value_range in
      let width = Rng.float rng max_width in
      (* Slide the interval uniformly around the truth so that, given the
         interval, the truth is uniform within it. *)
      let offset = Rng.float rng width in
      let belief = Uncertain.interval (truth -. offset) (truth -. offset +. width) in
      { id; belief; truth })

let gaussian_beliefs rng ~n ~mean ~stddev ~noise =
  if n < 0 then invalid_arg "Interval_data.gaussian_beliefs: n < 0";
  if stddev <= 0.0 || noise <= 0.0 then
    invalid_arg "Interval_data.gaussian_beliefs: non-positive scale";
  Array.init n (fun id ->
      let truth = Rng.gaussian rng ~mean ~stddev in
      let rec belief () =
        let observed = Rng.gaussian rng ~mean:truth ~stddev:noise in
        let b = Uncertain.gaussian ~mean:observed ~stddev:noise () in
        if Interval.contains (Uncertain.support b) truth then b else belief ()
      in
      { id; belief = belief (); truth })
