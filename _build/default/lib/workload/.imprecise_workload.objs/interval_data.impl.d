lib/workload/interval_data.ml: Array Interval List Operator Predicate Rng Uncertain
