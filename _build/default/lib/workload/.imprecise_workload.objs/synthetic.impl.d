lib/workload/synthetic.ml: Array Float Operator Rng Stdlib Tvl
