lib/workload/synthetic.mli: Operator Rng Tvl
