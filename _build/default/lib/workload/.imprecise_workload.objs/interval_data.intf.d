lib/workload/interval_data.mli: Interval Operator Predicate Rng Uncertain
