(** Feasible actions per Theorem 3.1.

    When an object is read and classified YES or MAYBE, the operator can
    {e forward} it, {e probe} it, or {e ignore} it.  Theorem 3.1 rules
    actions out when taking them could make the quality requirements
    unreachable no matter what the operator does later:

    (a) an object with laxity above [l_q^max] can never be forwarded
        (l^max never decreases once in the answer);
    (b) a MAYBE can not be forwarded if that pushes the precision
        guarantee below [p_q] (all remaining objects might be NO);
    (c) an object can not be ignored if the worst-case final recall after
        the ignore would fall below [r_q] (all remaining objects might be
        NO, so nothing later can make up for it).

    Probing is always feasible — it costs, but never endangers quality.
    Consequently the feasible set is never empty, and any policy filtered
    through it yields an operator that meets its requirements on every
    input.  This module is deliberately independent of policies so that
    the safety argument does not depend on how decisions are made. *)

type action = Forward | Probe | Ignore

val equal_action : action -> action -> bool
val pp_action : Format.formatter -> action -> unit

val can_forward :
  Counters.t -> Quality.requirements -> verdict:Tvl.t -> laxity:float -> bool
(** Rules (a) and (b).  @raise Invalid_argument on a NO verdict (a NO
    object is never forwarded; Fig. 1 line 22). *)

val can_ignore : Counters.t -> Quality.requirements -> verdict:Tvl.t -> bool
(** Rule (c), evaluated on the state {e after} the contemplated ignore
    (for a YES the ignore also adds the object to [|Y|]). *)

val feasible :
  Counters.t -> Quality.requirements -> verdict:Tvl.t -> laxity:float ->
  action list
(** The feasible actions, always containing [Probe]. *)

val first_feasible :
  Counters.t -> Quality.requirements -> verdict:Tvl.t -> laxity:float ->
  preference:action list -> action
(** The first action of [preference] that is feasible; falls back to
    [Probe] if none is. *)
