(** Decision policies over the (s(o), l(o)) plane (paper §4.1, Figs. 2–3).

    A policy decides how to handle each YES or MAYBE object.  The paper
    reduces this decision to regions of the plane spanned by the success
    probability [s(o)] and the laxity [l(o)], parameterised by four
    numbers tuned by the optimizer:

    - [s3]: probe a MAYBE with [l(o) > l_q^max] iff [s(o) > s3]
      (region 3), otherwise ignore it (region 2);
    - [s5]: probe a MAYBE with [l(o) <= l_q^max] iff [s(o) > s5]
      (region 5);
    - [p_fm]: forward a remaining MAYBE (region 4) with this probability,
      ignore it otherwise;
    - [p_py]: probe a YES with [l(o) > l_q^max] (region 6) with this
      probability, ignore it otherwise.  YES objects with
      [l(o) <= l_q^max] (region 7) are always forwarded.

    Region 1 is the NO objects, which are always discarded.

    A policy only expresses {e preference}; the operator intersects it
    with the feasible set of Theorem 3.1 ({!Decision}), so no policy can
    violate the quality requirements. *)

type params = { s3 : float; s5 : float; p_py : float; p_fm : float }

val params : s3:float -> s5:float -> p_py:float -> p_fm:float -> params
(** @raise Invalid_argument if any component is outside [0, 1]. *)

val pp_params : Format.formatter -> params -> unit

type t =
  | Region of params
      (** The paper's parameterised policy (QaQ with optimizer output). *)
  | Custom of
      (requirements:Quality.requirements ->
      counters:Counters.t ->
      verdict:Tvl.t ->
      laxity:float ->
      success:float ->
      Decision.action list)
      (** Arbitrary user policy: returns a ranked preference list; the
          operator takes the first feasible entry (falling back to
          [Probe], which is always feasible). *)

val qaq : params -> t
(** The paper's optimized policy. *)

val stingy : t
(** §5 baseline: avoid all costs — [s3 = s5 = 1], [p_py = p_fm = 0].
    Probes happen only when Theorem 3.1 forces them. *)

val greedy : t
(** §5 baseline: finish as fast as possible — [s3 = 0], [s5 = 1],
    [p_py = p_fm = 1]. *)

val stingy_params : params
val greedy_params : params

val preference :
  t ->
  rng:Rng.t ->
  requirements:Quality.requirements ->
  counters:Counters.t ->
  verdict:Tvl.t ->
  laxity:float ->
  success:float ->
  Decision.action list
(** Ranked preference for one object.  [rng] drives the randomised
    choices ([p_py], [p_fm]).
    @raise Invalid_argument on a NO verdict (NO objects never reach the
    policy). *)

val region_of :
  params:params ->
  laxity_bound:float ->
  verdict:Tvl.t ->
  laxity:float ->
  success:float ->
  int
(** Region number (1–7) of Fig. 3 for an object: NO objects are region 1;
    YES objects are 6 (above the laxity bound) or 7; MAYBE objects above
    the bound are 3 (probed, [s(o) > s3]) or 2 (ignored), below the bound
    they are 5 (probed, [s(o) > s5]) or 4 (forward-or-ignore). *)

val ambiguity : success:float -> float
(** The quality score of Cheng et al. [5] discussed in §6:
    [|s(o) − 0.5| / 0.5], maximal for near-definite objects and minimal
    for the most ambiguous ones.  Exposed for the probe-ordering
    extension benchmarks. *)
