type params = { s3 : float; s5 : float; p_py : float; p_fm : float }

let params ~s3 ~s5 ~p_py ~p_fm =
  let check name x =
    if not (Float.is_finite x && x >= 0.0 && x <= 1.0) then
      invalid_arg (Printf.sprintf "Policy.params: %s outside [0, 1]" name)
  in
  check "s3" s3;
  check "s5" s5;
  check "p_py" p_py;
  check "p_fm" p_fm;
  { s3; s5; p_py; p_fm }

let pp_params ppf p =
  Format.fprintf ppf "s3=%g s5=%g p_py=%g p_fm=%g" p.s3 p.s5 p.p_py p.p_fm

type t =
  | Region of params
  | Custom of
      (requirements:Quality.requirements ->
      counters:Counters.t ->
      verdict:Tvl.t ->
      laxity:float ->
      success:float ->
      Decision.action list)

let qaq p = Region p
let stingy_params = { s3 = 1.0; s5 = 1.0; p_py = 0.0; p_fm = 0.0 }
let greedy_params = { s3 = 0.0; s5 = 1.0; p_py = 1.0; p_fm = 1.0 }
let stingy = Region stingy_params
let greedy = Region greedy_params

(* The ranked preference of the region policy.  When the cheap choice of a
   region is infeasible under Theorem 3.1, the fallback is the cheapest
   remaining feasible action: a below-the-bound MAYBE that may not be
   ignored is forwarded if precision allows (a write costs c_wi), and only
   probed as the last resort — the forced probes the paper describes for
   Stingy ("it will have to perform some probes").  Objects above the
   laxity bound can never be forwarded, so there the fallback is a probe
   directly. *)
let region_preference p rng (req : Quality.requirements) ~verdict ~laxity
    ~success : Decision.action list =
  match (verdict : Tvl.t) with
  | No -> invalid_arg "Policy.preference: NO objects never reach the policy"
  | Yes ->
      if laxity <= req.laxity then [ Forward; Probe ] (* region 7 *)
      else if Rng.bernoulli rng p.p_py then [ Probe ] (* region 6, probe *)
      else [ Ignore; Probe ] (* region 6, ignore *)
  | Maybe ->
      if laxity > req.laxity then
        if success > p.s3 then [ Probe ] (* region 3 *)
        else [ Ignore; Probe ] (* region 2 *)
      else if success > p.s5 then [ Probe ] (* region 5 *)
      else if Rng.bernoulli rng p.p_fm then [ Forward; Probe ] (* region 4 *)
      else [ Ignore; Forward; Probe ] (* region 4, ignore branch *)

let preference t ~rng ~requirements ~counters ~verdict ~laxity ~success =
  match t with
  | Region p -> region_preference p rng requirements ~verdict ~laxity ~success
  | Custom f -> f ~requirements ~counters ~verdict ~laxity ~success

let region_of ~params:p ~laxity_bound ~verdict ~laxity ~success =
  match (verdict : Tvl.t) with
  | No -> 1
  | Yes -> if laxity <= laxity_bound then 7 else 6
  | Maybe ->
      if laxity > laxity_bound then (if success > p.s3 then 3 else 2)
      else if success > p.s5 then 5
      else 4

let ambiguity ~success = Float.abs (success -. 0.5) /. 0.5
