type requirements = { precision : float; recall : float; laxity : float }

let requirements ~precision ~recall ~laxity =
  let check_unit name x =
    if not (Float.is_finite x && x >= 0.0 && x <= 1.0) then
      invalid_arg (Printf.sprintf "Quality.requirements: %s outside [0, 1]" name)
  in
  check_unit "precision" precision;
  check_unit "recall" recall;
  if not (Float.is_finite laxity && laxity >= 0.0) then
    invalid_arg "Quality.requirements: laxity must be finite and >= 0";
  { precision; recall; laxity }

let exhaustive = { precision = 1.0; recall = 1.0; laxity = max_float }

let pp_requirements ppf (r : requirements) =
  Format.fprintf ppf "p_q=%g r_q=%g l_q=%g" r.precision r.recall r.laxity

type guarantees = { precision : float; recall : float; max_laxity : float }

let meets (g : guarantees) (r : requirements) =
  g.precision >= r.precision && g.recall >= r.recall && g.max_laxity <= r.laxity

let pp_guarantees ppf g =
  Format.fprintf ppf "p^G=%g r^G=%g l^max=%g" g.precision g.recall g.max_laxity

module Diagnostics = struct
  let check name cond = if not cond then invalid_arg ("Quality.Diagnostics." ^ name)

  let precision ~answer_size ~answer_in_exact =
    check "precision"
      (answer_size >= 0 && answer_in_exact >= 0 && answer_in_exact <= answer_size);
    if answer_size = 0 then 1.0
    else float_of_int answer_in_exact /. float_of_int answer_size

  let recall ~exact_size ~answer_in_exact =
    check "recall"
      (exact_size >= 0 && answer_in_exact >= 0 && answer_in_exact <= exact_size);
    if exact_size = 0 then 1.0
    else float_of_int answer_in_exact /. float_of_int exact_size
end
