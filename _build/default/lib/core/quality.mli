(** Quality requirements, guarantees and diagnostics (paper §2).

    A Quality-Aware Query carries three tolerances: a precision bound
    [p_q], a recall bound [r_q] (set-based accuracy, §2.1) and a laxity
    bound [l_q^max] (value-based accuracy, §2.2).  The evaluation returns
    {e guarantees}: lower bounds on the precision and recall of the
    returned answer with respect to the (unknown) exact set, and the
    actual maximum laxity of the answer (Eqs. 8–10).

    {!Diagnostics} computes the true precision and recall (Eqs. 3–4) when
    ground truth is available — usable only in tests and experiments,
    exactly as the paper uses them. *)

type requirements = private {
  precision : float;  (** p_q in [0, 1] *)
  recall : float;  (** r_q in [0, 1] *)
  laxity : float;  (** l_q^max >= 0 *)
}

val requirements :
  precision:float -> recall:float -> laxity:float -> requirements
(** @raise Invalid_argument if a bound is out of range or not finite. *)

val exhaustive : requirements
(** [p_q = 1, r_q = 1, l_q^max = ∞] is not expressible (laxity must be
    finite); this is [p_q = 1, r_q = 1] with laxity [max_float] — the
    requirements under which the answer equals the exact set (every MAYBE
    is probed). *)

val pp_requirements : Format.formatter -> requirements -> unit

type guarantees = {
  precision : float;  (** p^G: the answer's precision is at least this *)
  recall : float;  (** r^G: the answer's recall is at least this *)
  max_laxity : float;  (** l^max: largest laxity in the answer *)
}

val meets : guarantees -> requirements -> bool
(** [p^G >= p_q && r^G >= r_q && l^max <= l_q^max]. *)

val pp_guarantees : Format.formatter -> guarantees -> unit

module Diagnostics : sig
  val precision : answer_size:int -> answer_in_exact:int -> float
  (** Eq. 3: [|A ∩ E| / |A|], 1 when the answer is empty.
      @raise Invalid_argument on negative or inconsistent counts. *)

  val recall : exact_size:int -> answer_in_exact:int -> float
  (** Eq. 4: [|A ∩ E| / |E|], 1 when the exact set is empty.
      @raise Invalid_argument on negative or inconsistent counts. *)
end
