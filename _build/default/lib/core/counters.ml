type t = {
  mutable unseen : int;
  mutable yes_seen : int;
  mutable answer_yes : int;
  mutable answer_size : int;
  mutable maybe_ignored : int;
  mutable max_laxity : float;
}

let create ~total =
  if total < 0 then invalid_arg "Counters.create: total < 0";
  {
    unseen = total;
    yes_seen = 0;
    answer_yes = 0;
    answer_size = 0;
    maybe_ignored = 0;
    max_laxity = 0.0;
  }

let copy t =
  {
    unseen = t.unseen;
    yes_seen = t.yes_seen;
    answer_yes = t.answer_yes;
    answer_size = t.answer_size;
    maybe_ignored = t.maybe_ignored;
    max_laxity = t.max_laxity;
  }

(* Every event consumes exactly one input object. *)
let consume t =
  assert (t.unseen > 0);
  t.unseen <- t.unseen - 1

let note_forward t laxity =
  t.answer_size <- t.answer_size + 1;
  if laxity > t.max_laxity then t.max_laxity <- laxity

let saw_no t = consume t

let forward_yes t ~laxity =
  consume t;
  t.yes_seen <- t.yes_seen + 1;
  t.answer_yes <- t.answer_yes + 1;
  note_forward t laxity

let probe_yes t =
  consume t;
  t.yes_seen <- t.yes_seen + 1;
  t.answer_yes <- t.answer_yes + 1;
  note_forward t 0.0

let ignore_yes t =
  consume t;
  t.yes_seen <- t.yes_seen + 1

let forward_maybe t ~laxity =
  consume t;
  note_forward t laxity

let probe_maybe_yes t =
  consume t;
  t.yes_seen <- t.yes_seen + 1;
  t.answer_yes <- t.answer_yes + 1;
  note_forward t 0.0

let probe_maybe_no t = consume t

let ignore_maybe t =
  consume t;
  t.maybe_ignored <- t.maybe_ignored + 1

let unseen t = t.unseen
let yes_seen t = t.yes_seen
let answer_yes t = t.answer_yes
let answer_size t = t.answer_size
let maybe_ignored t = t.maybe_ignored
let max_laxity t = t.max_laxity

let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let precision_guarantee t = ratio t.answer_yes t.answer_size

let recall_guarantee t =
  ratio t.answer_yes (t.yes_seen + t.unseen + t.maybe_ignored)

let worst_case_final_recall t = ratio t.answer_yes (t.yes_seen + t.maybe_ignored)

let guarantees t : Quality.guarantees =
  {
    precision = precision_guarantee t;
    recall = recall_guarantee t;
    max_laxity = t.max_laxity;
  }

let pp ppf t =
  Format.fprintf ppf
    "unseen=%d yes_seen=%d answer_yes=%d answer_size=%d maybe_ignored=%d \
     max_laxity=%g"
    t.unseen t.yes_seen t.answer_yes t.answer_size t.maybe_ignored t.max_laxity
