type 'o instance = {
  classify : 'o -> Tvl.t;
  laxity : 'o -> float;
  success : 'o -> float;
}

type 'o source = { next : unit -> 'o option; total : int }

let source_of_array objects =
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length objects then None
    else begin
      let o = objects.(!pos) in
      incr pos;
      Some o
    end
  in
  { next; total = Array.length objects }

let source_of_cursor cursor =
  {
    next = (fun () -> Heap_file.Cursor.next cursor);
    total = Heap_file.Cursor.remaining cursor;
  }

type 'o emitted = { obj : 'o; precise : bool }

type 'o report = {
  answer : 'o emitted list;
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
  yes_seen : int;
  maybe_ignored : int;
  answer_size : int;
  exhausted : bool;
}

exception Inconsistent_probe

let run ~rng ?meter ?emit ?(collect = true) ?(enforce = true) ?on_progress
    ~instance ~probe ~policy ~(requirements : Quality.requirements) source =
  let meter = match meter with Some m -> m | None -> Cost_meter.create () in
  (* A shared meter may carry charges from earlier runs; the report's
     counts cover this run only. *)
  let counts_before = Cost_meter.counts meter in
  let counters = Counters.create ~total:source.total in
  let answer = ref [] in
  let deliver entry =
    (match emit with Some f -> f entry | None -> ());
    if collect then answer := entry :: !answer
  in
  let forward_imprecise o =
    Cost_meter.charge_write_imprecise meter;
    deliver { obj = o; precise = false }
  in
  let forward_precise o =
    Cost_meter.charge_write_precise meter;
    deliver { obj = o; precise = true }
  in
  (* A probe must yield a laxity-0 object whenever the result is going to
     be emitted; an object that resolves to NO is discarded, so residual
     imprecision there is fine (a relational probe may stop fetching
     attributes the moment the condition is decided). *)
  let probe_resolved o =
    Cost_meter.charge_probe meter;
    probe o
  in
  let require_resolved precise =
    if instance.laxity precise > 0.0 then raise Inconsistent_probe
  in
  let choose ~verdict ~laxity preference =
    if enforce then
      Decision.first_feasible counters requirements ~verdict ~laxity
        ~preference
    else
      match preference with a :: _ -> a | [] -> Decision.Probe
  in
  (* One object per iteration; Fig. 1's do-loop with the stopping test
     hoisted, so a query whose recall bound is already met reads
     nothing. *)
  let exhausted = ref false in
  let finished () =
    Counters.recall_guarantee counters >= requirements.Quality.recall
  in
  let note_progress () =
    match on_progress with
    | Some f ->
        f ~reads:(source.total - Counters.unseen counters)
          (Counters.guarantees counters)
    | None -> ()
  in
  while not (!exhausted || finished ()) do
    match source.next () with
    | None -> exhausted := true
    | Some o ->
        Cost_meter.charge_read meter;
        (match instance.classify o with
        | Tvl.No -> Counters.saw_no counters
        | Tvl.Yes as verdict -> (
            let laxity = instance.laxity o in
            let preference =
              Policy.preference policy ~rng ~requirements ~counters ~verdict
                ~laxity ~success:1.0
            in
            match choose ~verdict ~laxity preference with
            | Decision.Forward ->
                Counters.forward_yes counters ~laxity;
                forward_imprecise o
            | Decision.Probe ->
                let precise = probe_resolved o in
                (* A YES object's precise version must still satisfy λ. *)
                (match instance.classify precise with
                | Tvl.Yes -> ()
                | Tvl.No | Tvl.Maybe -> raise Inconsistent_probe);
                require_resolved precise;
                Counters.probe_yes counters;
                forward_precise precise
            | Decision.Ignore -> Counters.ignore_yes counters)
        | Tvl.Maybe as verdict -> (
            let laxity = instance.laxity o in
            let success = instance.success o in
            let preference =
              Policy.preference policy ~rng ~requirements ~counters ~verdict
                ~laxity ~success
            in
            match choose ~verdict ~laxity preference with
            | Decision.Forward ->
                Counters.forward_maybe counters ~laxity;
                forward_imprecise o
            | Decision.Probe -> (
                let precise = probe_resolved o in
                match instance.classify precise with
                | Tvl.Yes ->
                    require_resolved precise;
                    Counters.probe_maybe_yes counters;
                    forward_precise precise
                | Tvl.No -> Counters.probe_maybe_no counters
                | Tvl.Maybe -> raise Inconsistent_probe)
            | Decision.Ignore -> Counters.ignore_maybe counters));
        note_progress ()
  done;
  {
    answer = List.rev !answer;
    guarantees = Counters.guarantees counters;
    requirements;
    counts =
      (let after = Cost_meter.counts meter in
       {
         Cost_meter.reads = after.reads - counts_before.reads;
         probes = after.probes - counts_before.probes;
         writes_imprecise =
           after.writes_imprecise - counts_before.writes_imprecise;
         writes_precise = after.writes_precise - counts_before.writes_precise;
       });
    yes_seen = Counters.yes_seen counters;
    maybe_ignored = Counters.maybe_ignored counters;
    answer_size = Counters.answer_size counters;
    exhausted = !exhausted || Counters.unseen counters = 0;
  }

let cost model report = Cost_meter.cost_of_counts model report.counts

let normalized_cost model ~total report =
  if total <= 0 then invalid_arg "Operator.normalized_cost: total <= 0";
  cost model report /. float_of_int total

let trace ~rng ?(every = 1) ~instance ~probe ~policy ~requirements source =
  if every < 1 then invalid_arg "Operator.trace: every < 1";
  let samples = ref [] in
  let on_progress ~reads guarantees =
    if reads mod every = 0 then samples := (reads, guarantees) :: !samples
  in
  let report =
    run ~rng ~on_progress ~instance ~probe ~policy ~requirements source
  in
  (report, List.rev !samples)
