type action = Forward | Probe | Ignore

let equal_action a b =
  match (a, b) with
  | Forward, Forward | Probe, Probe | Ignore, Ignore -> true
  | (Forward | Probe | Ignore), _ -> false

let pp_action ppf a =
  Format.pp_print_string ppf
    (match a with Forward -> "forward" | Probe -> "probe" | Ignore -> "ignore")

let can_forward counters (req : Quality.requirements) ~verdict ~laxity =
  match (verdict : Tvl.t) with
  | No -> invalid_arg "Decision.can_forward: NO objects are never forwarded"
  | Yes -> laxity <= req.laxity
  | Maybe ->
      laxity <= req.laxity
      (* Rule (b): the post-forward precision guarantee |A∩Y| / (|A|+1)
         must not fall below p_q. *)
      && float_of_int (Counters.answer_yes counters)
         >= req.precision *. float_of_int (Counters.answer_size counters + 1)

let can_ignore counters (req : Quality.requirements) ~verdict =
  match (verdict : Tvl.t) with
  | No -> true
  | Yes | Maybe ->
      (* Rule (c): after the ignore the worst-case final recall is
         |A∩Y| / (|Y| + |M_s−A| + 1): ignoring a YES grows |Y|, ignoring a
         MAYBE grows |M_s−A| — either way the denominator gains one. *)
      let denominator =
        Counters.yes_seen counters + Counters.maybe_ignored counters + 1
      in
      float_of_int (Counters.answer_yes counters)
      >= req.recall *. float_of_int denominator

let feasible counters req ~verdict ~laxity =
  let forward =
    match (verdict : Tvl.t) with
    | No -> []
    | Yes | Maybe ->
        if can_forward counters req ~verdict ~laxity then [ Forward ] else []
  in
  let ignore_ = if can_ignore counters req ~verdict then [ Ignore ] else [] in
  forward @ [ Probe ] @ ignore_

let first_feasible counters req ~verdict ~laxity ~preference =
  let ok = function
    | Probe -> true
    | Forward -> (
        match (verdict : Tvl.t) with
        | No -> false
        | Yes | Maybe -> can_forward counters req ~verdict ~laxity)
    | Ignore -> can_ignore counters req ~verdict
  in
  match List.find_opt ok preference with Some a -> a | None -> Probe
