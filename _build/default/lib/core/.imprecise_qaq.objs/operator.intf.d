lib/core/operator.mli: Cost_meter Cost_model Heap_file Policy Quality Rng Tvl
