lib/core/counters.ml: Format Quality
