lib/core/quality.ml: Float Format Printf
