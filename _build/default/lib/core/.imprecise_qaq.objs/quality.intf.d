lib/core/quality.mli: Format
