lib/core/decision.mli: Counters Format Quality Tvl
