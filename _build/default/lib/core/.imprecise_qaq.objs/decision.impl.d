lib/core/decision.ml: Counters Format List Quality Tvl
