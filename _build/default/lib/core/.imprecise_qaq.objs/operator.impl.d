lib/core/operator.ml: Array Cost_meter Counters Decision Heap_file List Policy Quality Tvl
