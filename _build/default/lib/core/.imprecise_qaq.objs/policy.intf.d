lib/core/policy.mli: Counters Decision Format Quality Rng Tvl
