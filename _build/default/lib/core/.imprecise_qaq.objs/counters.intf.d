lib/core/counters.mli: Format Quality
