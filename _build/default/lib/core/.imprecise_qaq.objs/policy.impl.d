lib/core/policy.ml: Counters Decision Float Format Printf Quality Rng Tvl
