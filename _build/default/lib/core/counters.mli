(** The constant-memory state of the QaQ selection operator (Fig. 1).

    The operator never stores objects; its entire state is six counters
    from which the quality guarantees of Eqs. 8–10 are computed:

    - [unseen]        — |M_ns|, objects not yet read;
    - [yes_seen]      — |Y|, objects known YES (read as YES, or MAYBE
                        probed to YES);
    - [answer_yes]    — |A ∩ Y|, YES objects forwarded;
    - [answer_size]   — |A|, all objects forwarded;
    - [maybe_ignored] — |M_s − A|, MAYBE objects seen, not probed, not
                        forwarded;
    - [max_laxity]    — l^max, the largest laxity forwarded so far.

    Mutation happens only through the event functions below, which
    implement exactly the updates of Fig. 1 / Table 1. *)

type t

val create : total:int -> t
(** Fresh state for an input of [total] objects ([|M_ns| = |T|]).
    @raise Invalid_argument if [total < 0]. *)

val copy : t -> t

(** {2 Events (one per Fig. 1 case)} *)

val saw_no : t -> unit
(** Read a NO object: it is discarded. *)

val forward_yes : t -> laxity:float -> unit
(** Read a YES object and append it (imprecise) to the answer. *)

val probe_yes : t -> unit
(** Read a YES object, probe it, append the precise version (laxity 0). *)

val ignore_yes : t -> unit
(** Read a YES object and ignore it. *)

val forward_maybe : t -> laxity:float -> unit
(** Read a MAYBE object and append it unresolved. *)

val probe_maybe_yes : t -> unit
(** Read a MAYBE, probe it, it resolved YES: precise version appended. *)

val probe_maybe_no : t -> unit
(** Read a MAYBE, probe it, it resolved NO: discarded. *)

val ignore_maybe : t -> unit
(** Read a MAYBE object and ignore it. *)

(** {2 Observations} *)

val unseen : t -> int
val yes_seen : t -> int
val answer_yes : t -> int
val answer_size : t -> int
val maybe_ignored : t -> int
val max_laxity : t -> float

val precision_guarantee : t -> float
(** Eq. 8: [|A∩Y| / |A|], 1 for an empty answer. *)

val recall_guarantee : t -> float
(** Eq. 9: [|A∩Y| / (|Y| + |M_ns| + |M_s−A|)], 1 when the denominator is
    0 (then the exact set is provably empty or fully captured). *)

val worst_case_final_recall : t -> float
(** The recall guarantee that would hold if every remaining unseen object
    turned out NO: [|A∩Y| / (|Y| + |M_s−A|)].  This is the quantity
    Theorem 3.1(c) protects: it never decreases under any action except
    ignoring, so an ignore is only safe while it stays at or above
    [r_q]. *)

val guarantees : t -> Quality.guarantees
val pp : Format.formatter -> t -> unit
