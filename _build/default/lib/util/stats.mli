(** Descriptive statistics over float samples.

    Used by the experiment harness to aggregate repeated trial runs and by
    the sampling substrate to summarise estimated densities. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator [n - 1]); 0 for fewer than two
    samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min : float array -> float
(** Minimum; [nan] for an empty array. *)

val max : float array -> float
(** Maximum; [nan] for an empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] is the linear-interpolation quantile for
    [q] in [\[0, 1\]]; [nan] for an empty array.
    @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

val median : float array -> float
(** [quantile xs 0.5]. *)

val confidence95 : float array -> float
(** Half-width of a normal-approximation 95% confidence interval on the
    mean ([1.96 * stddev / sqrt n]); 0 for fewer than two samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;  (** half-width of the 95% confidence interval *)
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit

(** Streaming mean/variance (Welford's algorithm), for aggregating values
    that are expensive to retain. *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
