lib/util/math_special.mli:
