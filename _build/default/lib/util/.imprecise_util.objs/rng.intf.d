lib/util/rng.mli:
