lib/util/math_special.ml: Array Float
