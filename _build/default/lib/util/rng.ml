(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014.  The golden-gamma
   constant 0x9e3779b97f4a7c15 is the odd integer closest to 2^64/phi. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

(* Uniform int in [0, bound) by rejection on the top bits, avoiding the
   modulo bias of a plain [mod]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw bound64 in
    (* Reject the final partial block so every residue is equally likely. *)
    if Int64.sub (Int64.add raw (Int64.sub bound64 1L)) v < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let uniform t =
  (* 53 uniformly random mantissa bits, as in the standard doubles trick. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound =
  if not (bound > 0.0 && Float.is_finite bound) then
    invalid_arg "Rng.float: bound must be finite and positive";
  uniform t *. bound

let uniform_in t lo hi =
  if lo > hi then invalid_arg "Rng.uniform_in: lo > hi";
  lo +. (uniform t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p >= 1.0 then true else if p <= 0.0 then false else uniform t < p

let gaussian t ~mean ~stddev =
  let rec polar () =
    let u = (2.0 *. uniform t) -. 1.0 in
    let v = (2.0 *. uniform t) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then polar ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  mean +. (stddev *. polar ())

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.uniform t) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || n < 0 then invalid_arg "Rng.sample_without_replacement: negative";
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  (* Reservoir sampling keeps memory at O(k) even for large n. *)
  let reservoir = Array.init k (fun i -> i) in
  for i = k to n - 1 do
    let j = int t (i + 1) in
    if j < k then reservoir.(j) <- i
  done;
  shuffle t reservoir;
  reservoir
