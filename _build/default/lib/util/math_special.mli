(** Special functions not provided by the OCaml standard library.

    Needed by the Gaussian imprecision model to compute predicate success
    probabilities. *)

val erf : float -> float
(** Error function, absolute error below 1.5e-7 (Abramowitz & Stegun
    7.1.26 with symmetry). *)

val erfc : float -> float
(** Complementary error function [1 - erf x]. *)

val normal_cdf : mean:float -> stddev:float -> float -> float
(** CDF of the normal distribution.  [stddev] must be positive. *)

val normal_quantile : float -> float
(** Inverse CDF of the standard normal for [p] in (0, 1), via the
    Acklam rational approximation (relative error below 1.15e-9).
    @raise Invalid_argument if [p] is outside (0, 1). *)
