(** Deterministic, splittable pseudo-random number generator.

    Experiments in this repository must be reproducible: every random
    quantity is drawn from an explicitly seeded generator, never from a
    global one.  The implementation is SplitMix64 (Steele, Lea & Flood,
    OOPSLA 2014), which is fast, has a 64-bit state, and supports cheap
    splitting into statistically independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Use one
    split generator per logical component of an experiment so that adding
    draws to one component does not perturb the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be finite
    and positive. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] is uniform in [\[lo, hi)].
    @raise Invalid_argument if [lo > hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0, 1]). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via the Marsaglia polar method. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate ([rate > 0]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [\[0, n)], in random order.  @raise Invalid_argument if [k > n] or
    either argument is negative. *)
