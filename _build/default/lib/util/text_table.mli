(** Plain-text tables for experiment reports.

    The benchmark harness prints each reproduced paper table side by side
    with the paper's reported values; this module renders those grids with
    aligned columns in the style of the paper's own tables. *)

type t

val create : title:string -> header:string list -> t
(** A table with a title row and column headers.  All rows added later must
    have the same arity as [header]. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row arity differs from the header. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] adds a row whose first cell is [label] and
    whose remaining cells render [xs] with {!cell_of_float}.  The header
    must have arity [1 + List.length xs]. *)

val cell_of_float : float -> string
(** Compact float rendering: integers without a decimal point, otherwise up
    to three significant decimals, matching the paper's table style. *)

val render : t -> string
(** The full table, ending with a newline. *)

val print : t -> unit
(** [print t] writes {!render} to standard output. *)
