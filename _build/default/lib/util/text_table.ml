type t = {
  title : string;
  header : string list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Text_table.add_row: arity mismatch with header";
  t.rows <- row :: t.rows

let cell_of_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else begin
    (* Trim trailing zeros of a fixed 3-decimal rendering. *)
    let s = Printf.sprintf "%.3f" x in
    let rec trim i = if i > 0 && s.[i] = '0' then trim (i - 1) else i in
    let last = trim (String.length s - 1) in
    let last = if s.[last] = '.' then last - 1 else last in
    String.sub s 0 (last + 1)
  end

let add_float_row t label xs =
  add_row t (label :: List.map cell_of_float xs)

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let arity = List.length t.header in
  let widths = Array.make arity 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let buf = Buffer.create 256 in
  let pad i cell =
    let missing = widths.(i) - String.length cell in
    (* Right-align numeric-looking cells, left-align labels. *)
    let numeric =
      String.length cell > 0
      && (match cell.[0] with '0' .. '9' | '-' | '+' | '.' -> true | _ -> false)
    in
    if numeric then String.make missing ' ' ^ cell
    else cell ^ String.make missing ' '
  in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_string buf " |\n"
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * (arity - 1)) + 4
  in
  let rule = String.make total_width '-' ^ "\n" in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  emit_row t.header;
  Buffer.add_string buf rule;
  List.iter emit_row rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_string (render t)
