let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  if Array.length xs = 0 then nan else Array.fold_left Float.min xs.(0) xs

let max xs =
  if Array.length xs = 0 then nan else Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0, 1]";
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let median xs = quantile xs 0.5

let confidence95 xs =
  let n = Array.length xs in
  if n < 2 then 0.0 else 1.96 *. stddev xs /. sqrt (float_of_int n)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

let summarize xs =
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    max = max xs;
    ci95 = confidence95 xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g ±%.2g (sd=%.3g, min=%.4g, max=%.4g)" s.n
    s.mean s.ci95 s.stddev s.min s.max

module Welford = struct
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
end
