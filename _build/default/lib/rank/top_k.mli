(** Quality-aware top-k selection over imprecise scalars.

    The rank-query setting of Khanna & Tan [10], which the paper cites
    as the closest prior probe-minimisation work, integrated with the
    QaQ quality vocabulary.  The exact set [E] is the [k] records with
    the largest true values (ties broken towards the smaller id, a
    deterministic total order).  Classification is {e relative}: a
    record is certainly in the top-k when fewer than [k] others could
    possibly beat it, certainly out when at least [k] others certainly
    beat it, and MAYBE otherwise — so probing one record can flip the
    verdicts of others.

    Unlike selection, rank needs the whole input before anything can be
    certified, so every record is read once ([n · c_r]); the
    performance game is purely about probes, and recall is the only
    gradual guarantee: certified members give [r^G = |certified| / k]
    with precision 1, and forwarding uncertified candidates can never
    raise the guaranteed recall (|E| = k is known), so the answer is
    exactly the certified set plus, optionally, nothing.  Evaluation
    probes — widest support intersecting the k-th-rank boundary band
    first — until [r^G >= r_q], probing certified members that exceed
    the laxity bound as needed.  Precision is always 1, so any
    [p_q <= 1] is met. *)

type verdict_counts = { certain : int; impossible : int; open_ : int }

val classify : k:int -> Interval_data.record array -> Tvl.t array
(** Per-record verdict of "is in the top-k", from the current beliefs.
    @raise Invalid_argument if [k <= 0] or [k > n]. *)

val verdict_counts : Tvl.t array -> verdict_counts

val exact_top_k : k:int -> Interval_data.record array -> Interval_data.record list
(** Ground truth (tests/experiments), under the same tie order. *)

type report = {
  answer : Interval_data.record list;
      (** the emitted members — [ceil(r_q * k)] of the certified ones —
          in descending order of belief upper bound (exact rank order
          once resolved) *)
  guarantees : Quality.guarantees;  (** precision is always 1 *)
  requirements : Quality.requirements;
  counts : Cost_meter.counts;  (** reads = n, probes as performed *)
  k : int;
  certified : int;  (** total certified members, >= the emitted count *)
  exhausted : bool;  (** every record resolved (exact answer reached) *)
}

val run :
  ?meter:Cost_meter.t ->
  requirements:Quality.requirements ->
  k:int ->
  Interval_data.record array ->
  report
(** Evaluate the top-k query to the requested recall.  Deterministic (no
    randomness in the probe schedule).  The returned guarantees satisfy
    the requirements; if ties in true values make full certification
    impossible the loop still terminates — with everything resolved the
    tie order is total, so certification always completes.
    @raise Invalid_argument as in {!classify}. *)
