(** A static centered interval tree over objects' support intervals.

    Where {!Interval_index} answers "which objects might satisfy this
    predicate" by sorted-array sweeps, the interval tree answers the two
    primitive geometric queries directly and in output-sensitive time:

    - {b stabbing}: all intervals containing a point — O(log n + k);
    - {b overlap}: all intervals intersecting a query interval.

    Both are building blocks for imprecise-data access: a stabbing query
    at a predicate threshold yields exactly the MAYBE objects of
    [value >= x] (their supports straddle the threshold), and overlap
    queries yield the non-NO candidates of range predicates.  The
    structure is the classical one: each node stores the intervals
    containing its center, sorted by both endpoints; the rest recurse
    left/right of the center. *)

type 'a t

val build : (Interval.t * 'a) array -> 'a t
(** O(n log n).  Duplicate intervals are kept. *)

val size : 'a t -> int
val height : 'a t -> int
(** 0 for the empty tree; O(log n) for the balanced construction. *)

val stab : 'a t -> float -> (Interval.t * 'a) list
(** All entries whose interval contains the point, in unspecified
    order. *)

val overlapping : 'a t -> Interval.t -> (Interval.t * 'a) list
(** All entries whose interval intersects the query interval. *)

val count_stab : 'a t -> float -> int
val count_overlapping : 'a t -> Interval.t -> int

val candidates : 'a t -> Predicate.t -> 'a list
(** Objects not certainly NO under the predicate: entries whose interval
    intersects any component of the satisfying set, each reported once
    (by physical entry), in unspecified order.  Equivalent to
    {!Interval_index.candidates} up to order. *)
