(** The paper's cost model (§3.1, Table 2).

    Four unit costs parameterise query evaluation:
    - [c_r]: reading an object from the input and evaluating [λ(o)];
    - [c_p]: probing an object (retrieving [ω^o]) and evaluating
      [λ(ω^o)];
    - [c_wi]: appending an imprecise object to the answer;
    - [c_wp]: appending a probed precise object to the answer.

    The paper's experiments use [c_r = c_wi = c_wp = 1] and [c_p = 100]
    ("two orders of magnitude", the DRAM/disk or disk/network latency
    gap). *)

type t = { c_r : float; c_p : float; c_wi : float; c_wp : float }

val make : c_r:float -> c_p:float -> c_wi:float -> c_wp:float -> t
(** @raise Invalid_argument if any cost is negative or not finite. *)

val paper : t
(** [c_r = 1, c_p = 100, c_wi = 1, c_wp = 1]. *)

val uniform : t
(** All costs 1 — useful for counting operations. *)

val pp : Format.formatter -> t -> unit
