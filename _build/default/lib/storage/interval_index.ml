type 'a entry = { support : Interval.t; payload : 'a }

type 'a t = {
  (* Sorted by support upper bound, ascending. *)
  entries : 'a entry array;
  (* suffix_min_lo.(i) = min over j >= i of entries.(j).support.lo. *)
  suffix_min_lo : float array;
}

let build objects ~support =
  let entries =
    Array.map (fun payload -> { support = support payload; payload }) objects
  in
  Array.sort
    (fun a b -> Float.compare (Interval.hi a.support) (Interval.hi b.support))
    entries;
  let n = Array.length entries in
  let suffix_min_lo = Array.make (n + 1) infinity in
  for i = n - 1 downto 0 do
    suffix_min_lo.(i) <-
      Float.min suffix_min_lo.(i + 1) (Interval.lo entries.(i).support)
  done;
  { entries; suffix_min_lo }

let length t = Array.length t.entries

(* First index whose support upper bound is >= x. *)
let first_hi_at_least t x =
  let n = Array.length t.entries in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Interval.hi t.entries.(mid).support >= x then search lo mid
      else search (mid + 1) hi
    end
  in
  search 0 n

let iter_candidates t pred f =
  let set = Predicate.satisfying_set pred in
  match Real_set.components set with
  | [] -> ()
  | components ->
      let n = Array.length t.entries in
      let seen = Array.make n false in
      List.iter
        (fun (c_lo, c_hi) ->
          (* Candidates for this component: hi >= c_lo (a suffix of the
             sort order, found by binary search) and lo <= c_hi.  The
             suffix minimum of lo gives a whole-suffix early exit when
             nothing ahead can reach the component. *)
          let start = if c_lo = neg_infinity then 0 else first_hi_at_least t c_lo in
          if t.suffix_min_lo.(start) <= c_hi then
            for i = start to n - 1 do
              if (not seen.(i)) && Interval.lo t.entries.(i).support <= c_hi
              then seen.(i) <- true
            done)
        components;
      for i = 0 to n - 1 do
        if seen.(i) then f t.entries.(i).payload
      done

let candidates t pred =
  let out = ref [] in
  iter_candidates t pred (fun x -> out := x :: !out);
  Array.of_list (List.rev !out)

let candidate_count t pred =
  let n = ref 0 in
  iter_candidates t pred (fun _ -> incr n);
  !n

let pruned_count t pred = length t - candidate_count t pred
