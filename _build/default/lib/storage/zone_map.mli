(** Per-page zone maps over a scalar attribute.

    The paper leaves index-assisted access as future work (§7) but notes
    that "in the presence of an index we can effectively prune away part
    of [T] implicitly" (§3).  A zone map is the lightest such access
    method: each page records the hull of its objects' supports, and a
    page whose hull is classified NO by the predicate can be skipped
    without reading any of its objects.  Pruned objects are definite NOs,
    so skipping them is always sound — it shrinks [|M_ns|] for free and
    thereby improves the recall guarantee without any reads. *)

type t

val build : 'a Heap_file.t -> support:('a -> Interval.t) -> t
(** One hull per page. *)

val page_count : t -> int

val zone : t -> int -> Interval.t option
(** The hull of page [p]; [None] for an empty page. *)

val prunable : t -> Predicate.t -> int -> bool
(** [prunable zm pred p] iff every object on page [p] is guaranteed NO. *)

val pruned_pages : t -> Predicate.t -> int
(** Number of pages {!prunable} would skip. *)
