lib/storage/cost_meter.ml: Cost_model Format
