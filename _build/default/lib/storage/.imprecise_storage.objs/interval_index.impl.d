lib/storage/interval_index.ml: Array Float Interval List Predicate Real_set
