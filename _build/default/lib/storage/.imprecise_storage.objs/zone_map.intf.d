lib/storage/zone_map.mli: Heap_file Interval Predicate
