lib/storage/cost_meter.mli: Cost_model Format
