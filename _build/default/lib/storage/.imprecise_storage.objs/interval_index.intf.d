lib/storage/interval_index.mli: Interval Predicate
