lib/storage/interval_tree.ml: Array Float Interval List Predicate Real_set Stdlib
