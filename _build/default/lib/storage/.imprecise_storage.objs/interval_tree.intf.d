lib/storage/interval_tree.mli: Interval Predicate
