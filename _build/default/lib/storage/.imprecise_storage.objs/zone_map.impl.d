lib/storage/zone_map.ml: Array Heap_file Interval Predicate Tvl
