lib/storage/cost_model.ml: Float Format Printf
