(* Classical centered interval tree.  Each entry carries a unique tag so
   multi-component predicate queries can deduplicate reported entries. *)

type 'a entry = { interval : Interval.t; payload : 'a; tag : int }

type 'a node = {
  center : float;
  by_lo : 'a entry array;  (* intervals containing center, lo ascending *)
  by_hi : 'a entry array;  (* the same intervals, hi descending *)
  left : 'a node option;
  right : 'a node option;
}

type 'a t = { root : 'a node option; size : int }

let build pairs =
  let entries =
    Array.to_list
      (Array.mapi
         (fun tag (interval, payload) -> { interval; payload; tag })
         pairs)
  in
  let rec make = function
    | [] -> None
    | entries ->
        (* Median of the midpoints balances the recursion. *)
        let mids =
          List.map (fun e -> Interval.midpoint e.interval) entries
          |> List.sort Float.compare |> Array.of_list
        in
        let center = mids.(Array.length mids / 2) in
        let here, left_of, right_of =
          List.fold_left
            (fun (here, l, r) e ->
              if Interval.hi e.interval < center then (here, e :: l, r)
              else if Interval.lo e.interval > center then (here, l, e :: r)
              else (e :: here, l, r))
            ([], [], []) entries
        in
        let by_lo = Array.of_list here in
        Array.sort
          (fun a b -> Float.compare (Interval.lo a.interval) (Interval.lo b.interval))
          by_lo;
        let by_hi = Array.copy by_lo in
        Array.sort
          (fun a b -> Float.compare (Interval.hi b.interval) (Interval.hi a.interval))
          by_hi;
        Some { center; by_lo; by_hi; left = make left_of; right = make right_of }
  in
  { root = make entries; size = Array.length pairs }

let size t = t.size

let height t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + Stdlib.max (go n.left) (go n.right)
  in
  go t.root

let iter_stab t x f =
  let rec go = function
    | None -> ()
    | Some n ->
        if x < n.center then begin
          (* Only intervals starting at or before x can contain it. *)
          let rec scan i =
            if i < Array.length n.by_lo && Interval.lo n.by_lo.(i).interval <= x
            then begin
              f n.by_lo.(i);
              scan (i + 1)
            end
          in
          scan 0;
          go n.left
        end
        else if x > n.center then begin
          let rec scan i =
            if i < Array.length n.by_hi && Interval.hi n.by_hi.(i).interval >= x
            then begin
              f n.by_hi.(i);
              scan (i + 1)
            end
          in
          scan 0;
          go n.right
        end
        else Array.iter f n.by_lo
  in
  go t.root

(* Entries with lo in (a, b]; bounds may be infinite. *)
let iter_lo_in t a b f =
  let rec go = function
    | None -> ()
    | Some n ->
        Array.iter
          (fun e ->
            let lo = Interval.lo e.interval in
            if lo > a && lo <= b then f e)
          n.by_lo;
        (* Left subtree: hi < center, so lo < center too; prune when even
           center <= a.  Right subtree: lo > center; prune when center > b. *)
        if n.center > a then go n.left;
        if n.center <= b then go n.right
  in
  go t.root

let iter_overlapping_raw t a b f =
  (* Intervals intersecting [a, b] either contain a, or start inside
     (a, b] — disjoint cases, so no deduplication is needed here. *)
  if Float.is_finite a then iter_stab t a f
  else ();
  let a' = if Float.is_finite a then a else neg_infinity in
  iter_lo_in t a' b f

let stab t x =
  let out = ref [] in
  iter_stab t x (fun e -> out := (e.interval, e.payload) :: !out);
  !out

let overlapping t q =
  let out = ref [] in
  iter_overlapping_raw t (Interval.lo q) (Interval.hi q) (fun e ->
      out := (e.interval, e.payload) :: !out);
  !out

let count_stab t x =
  let n = ref 0 in
  iter_stab t x (fun _ -> incr n);
  !n

let count_overlapping t q =
  let n = ref 0 in
  iter_overlapping_raw t (Interval.lo q) (Interval.hi q) (fun _ -> incr n);
  !n

let candidates t pred =
  let seen = Array.make t.size false in
  let out = ref [] in
  List.iter
    (fun (a, b) ->
      iter_overlapping_raw t a b (fun e ->
          if not seen.(e.tag) then begin
            seen.(e.tag) <- true;
            out := e.payload :: !out
          end))
    (Real_set.components (Predicate.satisfying_set pred));
  !out
