(** A static index over objects' support intervals.

    The object-granular version of what {!Zone_map} does per page, and
    the access-method integration the paper defers to future work (§7):
    for a query predicate, the index yields only the objects whose
    support intersects the predicate's satisfying set — every object it
    withholds is a definite NO, so handing the operator the candidates
    alone is sound and shrinks [|M_ns|] (and the read cost) for free.

    Implementation: objects sorted by support upper bound with a
    suffix-minimum array of lower bounds.  For each component [c] of the
    satisfying set, a binary search finds the objects with
    [hi >= c.lo]; the suffix minimum prunes the scan early once no
    remaining object can reach the component.  Build is O(n log n);
    a query costs O(log n + candidates) per component for threshold
    predicates, degrading gracefully for pathological nestings. *)

type 'a t

val build : 'a array -> support:('a -> Interval.t) -> 'a t

val length : 'a t -> int

val candidates : 'a t -> Predicate.t -> 'a array
(** All objects not certainly NO, each exactly once, in index order. *)

val candidate_count : 'a t -> Predicate.t -> int

val pruned_count : 'a t -> Predicate.t -> int
(** Objects the index withholds: [length - candidate_count].

    Feed the candidates to the operator with
    [Operator.source_of_array (Interval_index.candidates idx pred)]:
    the source's [total] is then the candidate count, which is the
    correct initial [|M_ns|] because the pruned objects are known
    NOs. *)
