type t = { c_r : float; c_p : float; c_wi : float; c_wp : float }

let make ~c_r ~c_p ~c_wi ~c_wp =
  let check name x =
    if not (Float.is_finite x && x >= 0.0) then
      invalid_arg (Printf.sprintf "Cost_model.make: %s must be >= 0" name)
  in
  check "c_r" c_r;
  check "c_p" c_p;
  check "c_wi" c_wi;
  check "c_wp" c_wp;
  { c_r; c_p; c_wi; c_wp }

let paper = { c_r = 1.0; c_p = 100.0; c_wi = 1.0; c_wp = 1.0 }
let uniform = { c_r = 1.0; c_p = 1.0; c_wi = 1.0; c_wp = 1.0 }

let pp ppf t =
  Format.fprintf ppf "c_r=%g c_p=%g c_wi=%g c_wp=%g" t.c_r t.c_p t.c_wi
    t.c_wp
