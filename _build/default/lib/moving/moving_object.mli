(** Moving objects with dead-reckoned position uncertainty.

    The replication-barrier scenario of §1.1: a tracking database stores,
    per object, the last reported position and the time since the report.
    With a known maximum speed, the object is certainly inside a square
    of half-side [speed · elapsed] — an uncertainty rectangle that grows
    until the object reports again or is probed.  Window ("all objects in
    this area") queries classify rectangles YES/NO/MAYBE; the laxity is
    the rectangle's diagonal. *)

type t = private {
  id : int;
  reported : Rect.point;  (** last reported position *)
  bound : Rect.t;  (** current uncertainty rectangle *)
  actual : Rect.point;  (** hidden ground truth; revealed by a probe *)
  resolved : bool;
}

val make : id:int -> reported:Rect.point -> radius:float -> actual:Rect.point -> t
(** @raise Invalid_argument if [actual] lies outside the uncertainty
    square (the model would be inconsistent). *)

(** A window query over positions. *)
type window = Rect.t

val instance : window -> t Operator.instance
(** Classification by rectangle containment/disjointness; success is the
    covered-area fraction under a uniform position belief. *)

val probe : t -> t
(** Contact the object: its position becomes exact. *)

val in_exact : window -> t -> bool
val exact_size : window -> t array -> int

(** {2 Fleet generator} *)

val random_fleet :
  Rng.t ->
  n:int ->
  area:Rect.t ->
  max_radius:float ->
  t array
(** [n] objects with actual positions uniform in [area]; each has an
    uncertainty square of half-side [~ U(0, max_radius)] positioned so it
    contains the actual position uniformly. *)
