type t = {
  id : int;
  reported : Rect.point;
  bound : Rect.t;
  actual : Rect.point;
  resolved : bool;
}

let make ~id ~reported ~radius ~actual =
  let bound = Rect.of_center reported ~radius in
  if not (Rect.contains bound actual) then
    invalid_arg "Moving_object.make: actual position outside the bound";
  { id; reported; bound; actual; resolved = false }

type window = Rect.t

let effective_bound o = if o.resolved then Rect.of_point o.actual else o.bound

let instance window : t Operator.instance =
  {
    classify = (fun o -> Rect.classify_in (effective_bound o) window);
    laxity = (fun o -> Rect.laxity (effective_bound o));
    success = (fun o -> Rect.success_in (effective_bound o) window);
  }

let probe o = { o with resolved = true }
let in_exact window o = Rect.contains window o.actual

let exact_size window objects =
  Array.fold_left
    (fun acc o -> if in_exact window o then acc + 1 else acc)
    0 objects

let random_fleet rng ~n ~area ~max_radius =
  if n < 0 then invalid_arg "Moving_object.random_fleet: n < 0";
  if max_radius <= 0.0 then
    invalid_arg "Moving_object.random_fleet: max_radius <= 0";
  Array.init n (fun id ->
      let actual = Rect.sample rng area in
      let radius = Rng.float rng max_radius in
      (* Slide the reported centre uniformly within the square around the
         actual position so the truth is uniform inside its bound. *)
      let dx = Rng.uniform_in rng (-.radius) radius in
      let dy = Rng.uniform_in rng (-.radius) radius in
      let reported = { Rect.x = actual.x +. dx; y = actual.y +. dy } in
      make ~id ~reported ~radius ~actual)
