type setting = {
  label : string;
  total : int;
  f_y : float;
  f_m : float;
  max_laxity : float;
  p_q : float;
  r_q : float;
  l_q : float;
}

let default =
  {
    label = "default";
    total = 10000;
    f_y = 0.2;
    f_m = 0.2;
    max_laxity = 100.0;
    p_q = 0.9;
    r_q = 0.5;
    l_q = 50.0;
  }

let requirements s =
  Quality.requirements ~precision:s.p_q ~recall:s.r_q ~laxity:s.l_q

let workload s =
  Synthetic.config ~total:s.total ~f_y:s.f_y ~f_m:s.f_m
    ~max_laxity:s.max_laxity ()

type sweep = {
  id : string;
  title : string;
  varied : string;
  settings : setting list;
}

let labelf fmt = Printf.sprintf fmt

let varying_laxity =
  {
    id = "laxity";
    title = "Varying laxity bound (f_y = f_m = 0.2, p_q = 0.9, r_q = 0.5)";
    varied = "l_q^max";
    settings =
      List.map
        (fun l_q -> { default with label = labelf "%g" l_q; l_q })
        [ 1.0; 20.0; 40.0; 60.0; 80.0; 99.0 ];
  }

let varying_precision =
  {
    id = "precision";
    title = "Varying precision bound (r_q = 0.5, l_q^max = 50)";
    varied = "p_q";
    settings =
      List.map
        (fun p_q -> { default with label = labelf "%g" p_q; p_q })
        [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ];
  }

let varying_recall =
  {
    id = "recall";
    title = "Varying recall bound (p_q = 0.9, l_q^max = 50)";
    varied = "r_q";
    settings =
      List.map
        (fun r_q -> { default with label = labelf "%g" r_q; r_q })
        [ 0.01; 0.1; 0.2; 0.4; 0.6; 0.8; 0.99 ];
  }

let varying_selectivity =
  {
    id = "selectivity";
    title = "Varying selectivity (p_q = 0.9, r_q = 0.5, l_q^max = 50)";
    varied = "(f_y, f_m)";
    settings =
      List.map
        (fun f ->
          { default with label = labelf "(%g, %g)" f f; f_y = f; f_m = f })
        [ 0.01; 0.1; 0.2; 0.4 ];
  }

let varying_uncertainty =
  {
    id = "uncertainty";
    title = "Varying input uncertainty (f_y = 0.2, p_q = 0.9, r_q = 0.5, l_q^max = 50)";
    varied = "f_m";
    settings =
      List.map
        (fun f_m -> { default with label = labelf "%g" f_m; f_m })
        [ 0.01; 0.1; 0.2; 0.4; 0.6 ];
  }

let all_sweeps =
  [
    varying_laxity;
    varying_precision;
    varying_recall;
    varying_selectivity;
    varying_uncertainty;
  ]

let find_sweep id = List.find_opt (fun s -> String.equal s.id id) all_sweeps
