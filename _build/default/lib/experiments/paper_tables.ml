type opt_row = {
  label : string;
  s3 : float;
  s5 : float;
  p_py : float;
  p_fm : float;
  w_norm : float;
  read_fraction : float option;
}

type trial_row = { label : string; qaq : float; stingy : float; greedy : float }

let opt ?read label s3 s5 p_py p_fm w_norm =
  { label; s3; s5; p_py; p_fm; w_norm; read_fraction = read }

(* §5.1, "Varying Laxity" *)
let opt_laxity =
  [
    opt "1" 1.0 1.0 1.0 1.0 20.9;
    opt "20" 1.0 1.0 0.93 0.53 16.2;
    opt "40" 1.0 1.0 0.91 0.26 12.2;
    opt "60" 1.0 1.0 0.87 0.18 8.2;
    opt "80" 1.0 1.0 0.74 0.13 4.2;
    opt "99" 1.0 1.0 0.0 0.11 1.2;
  ]

(* §5.1, "Varying Precision" *)
let opt_precision =
  [
    opt "0.5" 1.0 1.0 0.5 1.0 6.3;
    opt "0.6" 1.0 1.0 0.5 1.0 6.3;
    opt "0.7" 1.0 1.0 0.65 0.71 7.7;
    opt "0.8" 1.0 1.0 0.78 0.44 9.0;
    opt "0.9" 1.0 1.0 0.89 0.21 10.2;
    opt "0.99" 1.0 1.0 0.99 0.02 11.1;
  ]

(* §5.1, "Varying Recall" (the only table reporting R/|T|) *)
let opt_recall =
  [
    opt ~read:0.09 "0.01" 1.0 1.0 0.0 0.0 0.1;
    opt ~read:0.63 "0.1" 1.0 1.0 0.0 0.0 0.69;
    opt ~read:0.9 "0.2" 1.0 1.0 0.0 0.08 1.0;
    opt ~read:1.0 "0.4" 1.0 1.0 0.53 0.17 6.5;
    opt ~read:1.0 "0.6" 0.87 0.87 1.0 0.29 13.8;
    opt ~read:1.0 "0.8" 0.5 0.5 1.0 0.61 21.4;
    opt ~read:1.0 "0.99" 0.03 0.33 1.0 1.0 27.8;
  ]

(* §5.1, "Varying Selectivity" *)
let opt_selectivity =
  [
    opt "(0.01, 0.01)" 1.0 1.0 0.89 0.21 1.5;
    opt "(0.1, 0.1)" 1.0 1.0 0.89 0.21 5.6;
    opt "(0.2, 0.2)" 1.0 1.0 0.89 0.21 10.2;
    opt "(0.4, 0.4)" 1.0 1.0 0.89 0.21 19.3;
  ]

(* §5.1, "Varying Input Uncertainty" *)
let opt_uncertainty =
  [
    opt "0.01" 1.0 1.0 0.02 1.0 1.4;
    opt "0.1" 1.0 1.0 0.42 0.32 5.4;
    opt "0.2" 1.0 1.0 0.89 0.21 10.2;
    opt "0.4" 0.78 0.78 1.0 0.2 20.3;
    opt "0.6" 0.67 0.67 1.0 0.2 40.0;
  ]

let trial label qaq stingy greedy = { label; qaq; stingy; greedy }

(* §5.2, trial-run tables *)
let trial_laxity =
  [
    trial "1" 20.7 23.3 31.1;
    trial "20" 16.3 18.3 25.7;
    trial "40" 12.3 13.9 19.9;
    trial "60" 8.5 9.7 14.0;
    trial "80" 4.3 4.6 7.6;
    trial "99" 1.3 1.3 1.5;
  ]

let trial_precision =
  [
    trial "0.5" 6.3 10.0 16.7;
    trial "0.6" 6.3 10.0 16.7;
    trial "0.7" 8.0 10.0 16.7;
    trial "0.8" 9.2 10.3 16.7;
    trial "0.9" 10.2 11.8 16.7;
    trial "0.99" 11.3 13.0 16.7;
  ]

let trial_recall =
  [
    trial "0.01" 0.1 0.1 0.9;
    trial "0.1" 0.7 0.7 6.6;
    trial "0.2" 1.0 1.0 10.5;
    trial "0.4" 6.7 7.6 15.3;
    trial "0.6" 15.4 15.5 18.0;
    trial "0.8" 21.7 22.1 19.9;
    trial "0.99" 27.5 27.5 24.3;
  ]

let trial_selectivity =
  [
    trial "(0.01, 0.01)" 1.5 1.6 1.9;
    trial "(0.1, 0.1)" 6.1 6.9 10.5;
    trial "(0.2, 0.2)" 10.6 12.1 17.9;
    trial "(0.4, 0.4)" 19.5 22.7 27.4;
  ]

let trial_uncertainty =
  [
    trial "0.01" 1.5 1.6 9.8;
    trial "0.1" 5.7 5.7 13.5;
    trial "0.2" 10.8 12.2 17.5;
    trial "0.4" 22.1 23.8 23.9;
    trial "0.6" 35.6 37.4 32.8;
  ]

let opt_rows ~sweep_id =
  match sweep_id with
  | "laxity" -> opt_laxity
  | "precision" -> opt_precision
  | "recall" -> opt_recall
  | "selectivity" -> opt_selectivity
  | "uncertainty" -> opt_uncertainty
  | other -> invalid_arg ("Paper_tables.opt_rows: unknown sweep " ^ other)

let trial_rows ~sweep_id =
  match sweep_id with
  | "laxity" -> trial_laxity
  | "precision" -> trial_precision
  | "recall" -> trial_recall
  | "selectivity" -> trial_selectivity
  | "uncertainty" -> trial_uncertainty
  | other -> invalid_arg ("Paper_tables.trial_rows: unknown sweep " ^ other)

let known_discrepancies =
  [
    ( "uncertainty",
      "Paper row f_m = 0.6 reports W/|T| = 40.0, but the paper's own cost \
       model (Eq. 11 with the §4.2 region counts) yields ~31.2 at the \
       paper's reported parameters (s3 = s5 = 0.67, p_py = 1, p_fm = 0.2). \
       The reproduction reports the model-consistent optimum (~31.3)." );
  ]
