lib/experiments/exp_report.ml: Exp_config Exp_runner List Paper_tables Printf Text_table
