lib/experiments/exp_config.mli: Quality Synthetic
