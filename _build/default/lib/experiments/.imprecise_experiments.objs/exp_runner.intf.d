lib/experiments/exp_runner.mli: Cost_meter Cost_model Exp_config Policy Quality Rng Solver Synthetic
