lib/experiments/paper_tables.mli:
