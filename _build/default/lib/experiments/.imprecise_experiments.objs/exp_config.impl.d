lib/experiments/exp_config.ml: List Printf Quality String Synthetic
