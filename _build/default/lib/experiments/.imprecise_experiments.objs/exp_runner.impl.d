lib/experiments/exp_runner.ml: Array Cost_meter Cost_model Density Exp_config Float List Operator Policy Quality Region_model Selectivity Solver Stats Synthetic
