lib/experiments/paper_tables.ml:
