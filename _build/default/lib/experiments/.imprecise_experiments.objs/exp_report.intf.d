lib/experiments/exp_report.mli: Exp_config Rng Text_table
