let f2 = Printf.sprintf "%.2f"
let f3 = Printf.sprintf "%.3g"

let opt_table (sweep : Exp_config.sweep) =
  let paper = Paper_tables.opt_rows ~sweep_id:sweep.id in
  let with_reads = List.exists (fun (r : Paper_tables.opt_row) -> r.read_fraction <> None) paper in
  let header =
    [ sweep.varied; "s3"; "s5"; "p_py"; "p_fm"; "W/|T|"; "paper W/|T|" ]
    @ (if with_reads then [ "R/|T|"; "paper R/|T|" ] else [])
    @ [ "paper (s3 s5 p_py p_fm)" ]
  in
  let table =
    Text_table.create ~title:("[5.1] " ^ sweep.title) ~header
  in
  List.iter2
    (fun (s : Exp_config.setting) (p : Paper_tables.opt_row) ->
      let e = Exp_runner.solve_setting s in
      let params = e.params in
      let row =
        [ s.label; f3 params.s3; f3 params.s5; f3 params.p_py; f3 params.p_fm;
          f3 e.normalized_cost; f3 p.w_norm ]
        @ (if with_reads then
             [ f3 e.read_fraction;
               (match p.read_fraction with Some r -> f3 r | None -> "-") ]
           else [])
        @ [ Printf.sprintf "%g %g %g %g" p.s3 p.s5 p.p_py p.p_fm ]
      in
      Text_table.add_row table row)
    sweep.settings paper;
  table

let trial_table ~rng ?(repetitions = 5) (sweep : Exp_config.sweep) =
  let paper = Paper_tables.trial_rows ~sweep_id:sweep.id in
  let header =
    [ sweep.varied; "QaQ"; "paper"; "Stingy"; "paper"; "Greedy"; "paper" ]
  in
  let table = Text_table.create ~title:("[5.2] " ^ sweep.title) ~header in
  List.iter2
    (fun (s : Exp_config.setting) (p : Paper_tables.trial_row) ->
      let results =
        Exp_runner.trial_series ~rng ~repetitions s
          [ Exp_runner.Qaq; Exp_runner.Stingy; Exp_runner.Greedy ]
      in
      let mean kind =
        match List.assoc_opt kind results with
        | Some (a : Exp_runner.aggregate) ->
            Printf.sprintf "%s±%s" (f2 a.mean_cost) (f2 a.ci95)
        | None -> "-"
      in
      Text_table.add_row table
        [ s.label;
          mean Exp_runner.Qaq; f2 p.qaq;
          mean Exp_runner.Stingy; f2 p.stingy;
          mean Exp_runner.Greedy; f2 p.greedy ])
    sweep.settings paper;
  table

let quality_table ~rng ?(repetitions = 5) (sweep : Exp_config.sweep) =
  let header =
    [ sweep.varied;
      "QaQ max p-viol"; "QaQ max r-viol";
      "Stingy max p-viol"; "Stingy max r-viol";
      "Greedy(raw) max p-viol"; "Greedy(raw) max r-viol" ]
  in
  let table =
    Text_table.create
      ~title:("[soundness] Worst observed requirement violations — " ^ sweep.title)
      ~header
  in
  List.iter
    (fun (s : Exp_config.setting) ->
      let results =
        Exp_runner.trial_series ~rng ~repetitions s
          [ Exp_runner.Qaq; Exp_runner.Stingy; Exp_runner.Greedy ]
      in
      let viols kind =
        match List.assoc_opt kind results with
        | Some (a : Exp_runner.aggregate) ->
            [ f3 a.worst_precision_violation; f3 a.worst_recall_violation ]
        | None -> [ "-"; "-" ]
      in
      Text_table.add_row table
        ((s.label :: viols Exp_runner.Qaq)
        @ viols Exp_runner.Stingy @ viols Exp_runner.Greedy))
    sweep.settings;
  table
