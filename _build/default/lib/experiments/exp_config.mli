(** Experiment settings for every table of the paper's §5.

    A {!setting} bundles one input characterisation
    ([|T|], [f_y], [f_m], [L]) with one set of quality requirements
    ([p_q], [r_q], [l_q^max]).  A {!sweep} is a named list of settings
    varying one dimension — one sweep per paper table pair
    (§5.1 optimal solutions + §5.2 trial runs). *)

type setting = {
  label : string;  (** the row label, e.g. ["20"] for l_q = 20 *)
  total : int;
  f_y : float;
  f_m : float;
  max_laxity : float;
  p_q : float;
  r_q : float;
  l_q : float;
}

val default : setting
(** The paper's default operating point: [|T| = 10000],
    [f_y = f_m = 0.2], [L = 100], [p_q = 0.9], [r_q = 0.5], [l_q = 50]. *)

val requirements : setting -> Quality.requirements
val workload : setting -> Synthetic.config

type sweep = {
  id : string;  (** e.g. ["laxity"], used on the command line *)
  title : string;
  varied : string;  (** name of the varied parameter, for table headers *)
  settings : setting list;
}

val varying_laxity : sweep
val varying_precision : sweep
val varying_recall : sweep
val varying_selectivity : sweep
val varying_uncertainty : sweep

val all_sweeps : sweep list
val find_sweep : string -> sweep option
