(** Rendering of paper-vs-measured tables.

    One function per paper-table family; both produce {!Text_table}s with
    the measured values next to the paper's published numbers, in the
    paper's row order.  These drive `bench/main.exe` and the
    `qaq_cli tables` command, and their outputs are the source for
    EXPERIMENTS.md. *)

val opt_table : Exp_config.sweep -> Text_table.t
(** §5.1: optimizer parameters and normalised optimal cost per setting,
    paper values alongside.  Includes [R/|T|] for the recall sweep (the
    only one the paper reports it for). *)

val trial_table :
  rng:Rng.t -> ?repetitions:int -> Exp_config.sweep -> Text_table.t
(** §5.2: measured mean normalised cost (± 95% CI half-width) for QaQ,
    Stingy and Greedy with the paper's trial value alongside each.
    [repetitions] defaults to 5. *)

val quality_table :
  rng:Rng.t -> ?repetitions:int -> Exp_config.sweep -> Text_table.t
(** Soundness check not in the paper: per setting, the worst observed
    violation of the precision and recall requirements by the enforced
    policies (QaQ, Stingy) — all zeros — and by raw Greedy (which the
    paper lets violate precision). *)
