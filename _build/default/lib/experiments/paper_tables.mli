(** The numbers reported in the paper's §5, transcribed verbatim.

    Used to print paper-vs-measured comparisons and by regression tests
    that assert the reproduction stays within tolerance of the published
    results. *)

(** One row of a §5.1 optimal-solution table. *)
type opt_row = {
  label : string;
  s3 : float;
  s5 : float;
  p_py : float;
  p_fm : float;
  w_norm : float;  (** W / |T| *)
  read_fraction : float option;  (** R / |T|, reported only in Table 3 *)
}

(** One row of a §5.2 trial-run table: normalised costs per policy. *)
type trial_row = { label : string; qaq : float; stingy : float; greedy : float }

val opt_rows : sweep_id:string -> opt_row list
(** @raise Invalid_argument on an unknown sweep id. *)

val trial_rows : sweep_id:string -> trial_row list
(** @raise Invalid_argument on an unknown sweep id. *)

val known_discrepancies : (string * string) list
(** [(sweep id, note)] for paper rows that are inconsistent with the
    paper's own cost model; the reproduction documents rather than
    matches them. *)
