(** Multi-attribute tuples with per-attribute imprecision.

    The paper treats objects as atomic: one belief, one probe.  Real
    records have several uncertain attributes (a sensor's temperature
    {e and} battery level; a vehicle's position {e and} speed), queried
    by Boolean combinations of per-attribute predicates and probed
    {e per attribute} — fetching one attribute of one tuple costs one
    probe, and a conjunction may be decidable after probing just one
    conjunct.

    This module lifts the framework to that setting:

    - a {!schema} names the attributes;
    - a {!tuple} holds one belief per attribute (plus hidden ground
      truth, revealed attribute-by-attribute);
    - a {!condition} combines per-attribute scalar predicates with
      AND/OR/NOT, evaluated in Kleene logic over the per-attribute
      verdicts.  Kleene evaluation is sound (YES/NO verdicts are never
      wrong) but not complete — naively, [x >= 1 OR x <= 2] on one fuzzy
      attribute would stay MAYBE even though it is a tautology.
      Conditions are therefore normalised first: negations are pushed to
      the atoms and same-attribute atoms that are siblings under one
      connective are merged into a single atom whose compound
      {!Predicate.t} has exact satisfying-set semantics, which recovers
      completeness for per-attribute combinations like the above;
    - {!probe_plan} picks which single attribute to probe next: the
      MAYBE attribute whose resolution is most likely to decide the
      whole condition, estimated from the belief models.

    The QaQ operator runs unchanged on top via {!instance} and
    {!probe_step}; condition laxity is the largest laxity among the
    attributes the condition mentions that are still imprecise. *)

type schema = private { names : string array }

val schema : string list -> schema
(** @raise Invalid_argument on an empty or duplicated attribute list. *)

val arity : schema -> int

val attr : schema -> string -> int
(** Index of an attribute.  @raise Not_found if absent. *)

type tuple = private {
  id : int;
  beliefs : Uncertain.t array;
  truths : float array;  (** hidden; revealed per attribute by probes *)
}

val tuple : id:int -> beliefs:Uncertain.t array -> truths:float array -> tuple
(** @raise Invalid_argument on arity mismatch or a truth outside its
    belief's support. *)

val belief : tuple -> int -> Uncertain.t

(** Conditions over a schema. *)
type condition =
  | Atom of int * Predicate.t  (** attribute index, scalar predicate *)
  | Not of condition
  | And of condition * condition
  | Or of condition * condition

val atom : schema -> string -> Predicate.t -> condition
(** By attribute name.  @raise Not_found if absent. *)

val validate : schema -> condition -> unit
(** @raise Invalid_argument if an atom's index is out of range. *)

val mentioned : condition -> int list
(** Attribute indices used, ascending, without duplicates. *)

val eval_truth : condition -> tuple -> bool
(** Ground-truth evaluation (tests/experiments only). *)

val classify : condition -> tuple -> Tvl.t
(** Kleene evaluation over per-attribute verdicts, with each attribute's
    atoms first normalised into one exact satisfying set. *)

val success : condition -> tuple -> float
(** Probability the condition holds, assuming independent attributes:
    per-atom masses are exact (satisfying-set measure under the
    belief) and are combined through the tree as if subformulas were
    independent — exact whenever, after normalisation, each attribute
    appears in at most one atom, an estimate otherwise.  Always in
    [\[0, 1\]]; 1 on YES and 0 on NO. *)

val laxity : condition -> tuple -> float
(** Largest laxity among mentioned, still-imprecise attributes; 0 when
    every mentioned attribute is precise. *)

val probe_attribute : tuple -> int -> tuple
(** Reveal one attribute ([belief] becomes exact).  Idempotent. *)

val next_probe : condition -> tuple -> int option
(** The attribute {!probe_plan} would fetch next: among mentioned
    attributes still imprecise, the one with the greatest chance of
    deciding the condition (decision probability estimated by
    resolving that attribute to YES/NO extremes); [None] if the
    condition is already definite or no mentioned attribute is
    imprecise. *)

val resolve : ?meter:Cost_meter.t -> condition -> tuple -> tuple
(** Probe attributes ({!next_probe} order, one [c_p] charge on [meter]
    each) until the condition is definite.  Total fetches bounded by the
    number of mentioned attributes. *)

val instance : condition -> tuple Operator.instance
(** Plug into {!Operator.run} (use {!select} for correct per-attribute
    probe accounting). *)

type report = {
  answer : tuple Operator.emitted list;
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
      (** [probes] counts {e attribute fetches}, the unit that costs
          [c_p]; one operator-level probe decision may fetch several
          attributes (or, for a decided-by-first-fetch conjunction,
          fewer than the condition mentions) *)
  probe_actions : int;  (** operator-level probe decisions *)
  answer_size : int;
  exhausted : bool;
}

val select :
  rng:Rng.t ->
  ?emit:(tuple Operator.emitted -> unit) ->
  ?collect:bool ->
  ?enforce:bool ->
  ?policy:Policy.t ->
  requirements:Quality.requirements ->
  condition ->
  tuple array ->
  report
(** Quality-aware selection over a relation: {!Operator.run} with
    probing delegated to {!resolve}, charging [c_p] per attribute fetch.
    [policy] defaults to {!Policy.stingy}.  The guarantee story is
    unchanged: with [enforce] (default) the requirements always hold. *)
