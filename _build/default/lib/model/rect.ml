type point = { x : float; y : float }
type t = { xr : Interval.t; yr : Interval.t }

let make xr yr = { xr; yr }

let of_center { x; y } ~radius =
  if radius < 0.0 then invalid_arg "Rect.of_center: negative radius";
  {
    xr = Interval.make (x -. radius) (x +. radius);
    yr = Interval.make (y -. radius) (y +. radius);
  }

let of_point p = { xr = Interval.point p.x; yr = Interval.point p.y }
let x_range t = t.xr
let y_range t = t.yr

let laxity t =
  let w = Interval.width t.xr and h = Interval.width t.yr in
  sqrt ((w *. w) +. (h *. h))

let area t = Interval.width t.xr *. Interval.width t.yr
let contains t p = Interval.contains t.xr p.x && Interval.contains t.yr p.y
let subset a b = Interval.subset a.xr b.xr && Interval.subset a.yr b.yr
let intersects a b = Interval.intersects a.xr b.xr && Interval.intersects a.yr b.yr

let classify_in o window =
  if subset o window then Tvl.Yes
  else if not (intersects o window) then Tvl.No
  else Tvl.Maybe

let success_in o window =
  let a = area o in
  if a = 0.0 then begin
    (* Degenerate object: position is known along at least one axis. *)
    if
      subset o window
      || (intersects o window
         && Interval.is_point o.xr && Interval.is_point o.yr)
    then 1.0
    else if not (intersects o window) then 0.0
    else begin
      (* A segment: covered length fraction along the non-degenerate axis. *)
      let frac i w =
        if Interval.is_point i then 1.0
        else
          match Interval.intersection i w with
          | None -> 0.0
          | Some overlap -> Interval.width overlap /. Interval.width i
      in
      frac o.xr window.xr *. frac o.yr window.yr
    end
  end
  else begin
    match
      (Interval.intersection o.xr window.xr, Interval.intersection o.yr window.yr)
    with
    | Some ox, Some oy -> Interval.width ox *. Interval.width oy /. a
    | None, _ | _, None -> 0.0
  end

let sample rng t =
  { x = Interval.sample rng t.xr; y = Interval.sample rng t.yr }

let pp ppf t = Format.fprintf ppf "%a x %a" Interval.pp t.xr Interval.pp t.yr
let equal a b = Interval.equal a.xr b.xr && Interval.equal a.yr b.yr
