type t =
  | Exact of float
  | Interval of Interval.t
  | Gaussian of { mean : float; stddev : float; cut : float }

let exact x =
  if not (Float.is_finite x) then invalid_arg "Uncertain.exact: not finite";
  Exact x

let interval lo hi = Interval (Interval.make lo hi)

let gaussian ?(cut = 4.0) ~mean ~stddev () =
  if stddev <= 0.0 then invalid_arg "Uncertain.gaussian: stddev <= 0";
  if cut <= 0.0 then invalid_arg "Uncertain.gaussian: cut <= 0";
  if not (Float.is_finite mean) then invalid_arg "Uncertain.gaussian: mean";
  Gaussian { mean; stddev; cut }

let laxity = function
  | Exact _ -> 0.0
  | Interval i -> Interval.width i
  | Gaussian { stddev; _ } -> stddev

let support = function
  | Exact x -> Interval.point x
  | Interval i -> i
  | Gaussian { mean; stddev; cut } ->
      Interval.make (mean -. (cut *. stddev)) (mean +. (cut *. stddev))

let classify_ge t x = Interval.classify_ge (support t) x
let classify_le t x = Interval.classify_le (support t) x
let classify_between t a b = Interval.classify_between (support t) a b

let success_ge t x =
  match t with
  | Exact v -> if v >= x then 1.0 else 0.0
  | Interval i -> Interval.success_ge i x
  | Gaussian { mean; stddev; _ } ->
      1.0 -. Math_special.normal_cdf ~mean ~stddev x

let success_le t x =
  match t with
  | Exact v -> if v <= x then 1.0 else 0.0
  | Interval i -> Interval.success_le i x
  | Gaussian { mean; stddev; _ } -> Math_special.normal_cdf ~mean ~stddev x

let success_between t a b =
  match t with
  | Exact v -> if a <= v && v <= b then 1.0 else 0.0
  | Interval i -> Interval.success_between i a b
  | Gaussian { mean; stddev; _ } ->
      if a > b then 0.0
      else
        Math_special.normal_cdf ~mean ~stddev b
        -. Math_special.normal_cdf ~mean ~stddev a

let sample rng = function
  | Exact x -> x
  | Interval i -> Interval.sample rng i
  | Gaussian { mean; stddev; cut } ->
      let rec draw () =
        let x = Rng.gaussian rng ~mean ~stddev in
        if Float.abs (x -. mean) <= cut *. stddev then x else draw ()
      in
      draw ()

let pp ppf = function
  | Exact x -> Format.fprintf ppf "exact %g" x
  | Interval i -> Interval.pp ppf i
  | Gaussian { mean; stddev; cut } ->
      Format.fprintf ppf "N(%g, %g^2)|%g" mean stddev cut

let equal a b =
  match (a, b) with
  | Exact x, Exact y -> x = y
  | Interval i, Interval j -> Interval.equal i j
  | Gaussian g, Gaussian h ->
      g.mean = h.mean && g.stddev = h.stddev && g.cut = h.cut
  | (Exact _ | Interval _ | Gaussian _), _ -> false
