(** Closed real intervals — the paper's running model of imprecision.

    An imprecise object [o = \[lo, hi\]] stands for an unknown precise value
    [ω^o ∈ \[lo, hi\]].  The paper defines its laxity as the width
    [hi - lo] (§2.2). *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi].  @raise Invalid_argument if [lo > hi] or either bound is
    not finite. *)

val point : float -> t
(** Degenerate interval [\[x, x\]] — a precise value. *)

val lo : t -> float
val hi : t -> float

val width : t -> float
(** [hi - lo]; the paper's laxity [l(o)] for intervals. *)

val midpoint : t -> float

val is_point : t -> bool
(** [true] iff the width is 0. *)

val contains : t -> float -> bool
(** [contains i x] iff [lo <= x <= hi]. *)

val subset : t -> t -> bool
(** [subset a b] iff every point of [a] lies in [b]. *)

val intersects : t -> t -> bool
val intersection : t -> t -> t option
val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic on [(lo, hi)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val clamp : t -> float -> float
(** [clamp i x] is [x] forced into [i]. *)

val sample : Rng.t -> t -> float
(** Uniform draw from the interval (its midpoint if degenerate). *)

(** {2 Predicate support}

    Classification of the interval against one-dimensional predicates,
    together with the success probability [s(o)] of §4.1 computed under
    the paper's uniformity assumption ([ω^o ~ U(lo, hi)]). *)

val classify_ge : t -> float -> Tvl.t
(** Verdict of [ω^o >= x]: [Yes] if [lo >= x], [No] if [hi < x], else
    [Maybe]. *)

val classify_le : t -> float -> Tvl.t
val classify_between : t -> float -> float -> Tvl.t
(** Verdict of [a <= ω^o <= b]. *)

val success_ge : t -> float -> float
(** [P(ω^o >= x)] under uniformity; the paper's [s(o) = (hi - x)/(hi - lo)]
    clamped to [\[0, 1\]].  1 for a degenerate interval satisfying the
    predicate, 0 otherwise. *)

val success_le : t -> float -> float
val success_between : t -> float -> float -> float
