type t = { lo : float; hi : float }

let make lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Interval.make: bounds must be finite";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x = make x x
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let midpoint t = t.lo +. (width t /. 2.0)
let is_point t = t.lo = t.hi
let contains t x = t.lo <= x && x <= t.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let intersects a b = a.lo <= b.hi && b.lo <= a.hi

let intersection a b =
  if intersects a b then Some { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }
  else None

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  let c = Float.compare a.lo b.lo in
  if c <> 0 then c else Float.compare a.hi b.hi

let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
let to_string t = Format.asprintf "%a" pp t
let clamp t x = Float.min t.hi (Float.max t.lo x)
let sample rng t = if is_point t then t.lo else Rng.uniform_in rng t.lo t.hi

let classify_ge t x =
  if t.lo >= x then Tvl.Yes else if t.hi < x then Tvl.No else Tvl.Maybe

let classify_le t x =
  if t.hi <= x then Tvl.Yes else if t.lo > x then Tvl.No else Tvl.Maybe

let classify_between t a b =
  Tvl.and_ (classify_ge t a) (classify_le t b)

let clamp01 p = Float.min 1.0 (Float.max 0.0 p)

let success_ge t x =
  if is_point t then (if t.lo >= x then 1.0 else 0.0)
  else clamp01 ((t.hi -. x) /. width t)

let success_le t x =
  if is_point t then (if t.lo <= x then 1.0 else 0.0)
  else clamp01 ((x -. t.lo) /. width t)

let success_between t a b =
  if is_point t then (if a <= t.lo && t.lo <= b then 1.0 else 0.0)
  else if a > b then 0.0
  else begin
    let covered = Float.min t.hi b -. Float.max t.lo a in
    clamp01 (covered /. width t)
  end
