(** Axis-aligned rectangles: the imprecision model for moving objects.

    A tracked object whose last known position and maximum speed are known
    is somewhere inside a rectangle (the paper's replication-barrier
    scenario, §1.1).  Laxity is taken as the diagonal length, so a probe
    (which collapses the rectangle to a point) always drives it to 0. *)

type point = { x : float; y : float }

type t = private { xr : Interval.t; yr : Interval.t }

val make : Interval.t -> Interval.t -> t
val of_center : point -> radius:float -> t
(** Square of half-side [radius] around the point.  [radius >= 0]. *)

val of_point : point -> t
val x_range : t -> Interval.t
val y_range : t -> Interval.t
val laxity : t -> float
(** Diagonal length; 0 iff the rectangle is a point. *)

val area : t -> float
val contains : t -> point -> bool
val subset : t -> t -> bool
val intersects : t -> t -> bool

val classify_in : t -> t -> Tvl.t
(** [classify_in o window]: verdict of "the object's true position lies in
    [window]" — [Yes] if [o ⊆ window], [No] if disjoint, else [Maybe]. *)

val success_in : t -> t -> float
(** Probability of a YES probe under a uniform position belief: the area
    fraction of [o] covered by the window (1 or 0 for degenerate [o]). *)

val sample : Rng.t -> t -> point
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
