lib/model/rect.mli: Format Interval Rng Tvl
