lib/model/interval.ml: Float Format Rng Tvl
