lib/model/interval.mli: Format Rng Tvl
