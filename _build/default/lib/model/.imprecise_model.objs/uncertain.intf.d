lib/model/uncertain.mli: Format Interval Rng Tvl
