lib/model/rect.ml: Format Interval Tvl
