lib/model/uncertain.ml: Float Format Interval Math_special Rng
