(** Scalar imprecision models.

    The paper develops its framework for interval objects but notes (§1,
    footnote 1; §2.2) that the technique works for any model of
    imprecision that supports three-way classification, a laxity measure
    and — for the optimizer — a success-probability estimate.  This module
    provides three such models over real scalars:

    - {b Exact}: a precise value; laxity 0.
    - {b Interval}: support [\[lo, hi\]] with a uniform belief; laxity is
      the width (the paper's running example).
    - {b Gaussian}: mean/stddev belief; the paper suggests using a
      distribution parameter such as the standard deviation as laxity
      (§2.2).  Classification treats values beyond [cut] standard
      deviations as definite, which is the standard truncation used to
      make a Gaussian model classifiable at all. *)

type t =
  | Exact of float
  | Interval of Interval.t
  | Gaussian of { mean : float; stddev : float; cut : float }

val exact : float -> t
val interval : float -> float -> t

val gaussian : ?cut:float -> mean:float -> stddev:float -> unit -> t
(** [cut] defaults to 4.0 standard deviations; must be positive, as must
    [stddev]. *)

val laxity : t -> float
(** 0 / width / stddev respectively. *)

val support : t -> Interval.t
(** Interval of values considered possible: the point, the interval, or
    [mean ± cut·stddev]. *)

val classify_ge : t -> float -> Tvl.t
(** Verdict of [value >= x] based on the support. *)

val classify_le : t -> float -> Tvl.t
val classify_between : t -> float -> float -> Tvl.t

val success_ge : t -> float -> float
(** [P(value >= x)] under the model's belief: 0/1 for [Exact], the uniform
    mass for [Interval], the Gaussian tail for [Gaussian]. *)

val success_le : t -> float -> float
val success_between : t -> float -> float -> float

val sample : Rng.t -> t -> float
(** Draw a plausible precise value from the belief (used by workload
    generators to materialise ground truth consistent with the model).
    Gaussian draws are rejected onto the support so that classification
    and ground truth can never contradict each other. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
