lib/probe/probe_source.ml: Float Rng
