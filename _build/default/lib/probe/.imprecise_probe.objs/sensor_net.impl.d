lib/probe/sensor_net.ml: Array Interval Operator Predicate Rng Uncertain
