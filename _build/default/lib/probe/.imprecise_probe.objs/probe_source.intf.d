lib/probe/probe_source.mli: Rng
