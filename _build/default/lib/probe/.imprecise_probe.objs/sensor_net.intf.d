lib/probe/sensor_net.mli: Interval Operator Predicate Rng
