(** Probe sources: how an imprecise object is resolved to its precise
    version [ω^o].

    A probe is the expensive operation of the paper — fetching the precise
    object from wherever it lives (the sensor itself, a remote archive,
    tertiary storage).  A source wraps the resolution function with
    latency simulation and optional transient-failure injection so that
    examples and benchmarks can model realistic remote stores; the QaQ
    operator itself only sees [probe : 'o -> 'o]. *)

(** Latency charged per probe attempt, in arbitrary time units. *)
type latency =
  | Instant
  | Constant of float
  | Jittered of { base : float; jitter : float }
      (** uniform in [\[base, base + jitter\]] *)

type 'o t

val create :
  ?latency:latency ->
  ?failure_rate:float ->
  ?max_retries:int ->
  ?rng:Rng.t ->
  ('o -> 'o) ->
  'o t
(** [create resolve] builds a source around the resolution function, which
    must return an object of laxity 0 (the precise version).

    [latency] defaults to [Instant].  [failure_rate] (default 0) is the
    probability that one attempt fails transiently and is retried, up to
    [max_retries] (default 10) extra attempts; each attempt pays the
    latency.  A probe that exhausts its retries raises {!Probe_failed}.
    [rng] is required if either latency jitter or failures are used.

    @raise Invalid_argument on a failure rate outside [0, 1) or a
    negative retry count. *)

exception Probe_failed

val probe : 'o t -> 'o -> 'o
(** Resolve one object, recording attempts and simulated latency. *)

type stats = {
  probes : int;  (** successful probe operations *)
  attempts : int;  (** including failed attempts *)
  simulated_latency : float;  (** total time units spent *)
}

val stats : 'o t -> stats
val reset_stats : 'o t -> unit
