type latency =
  | Instant
  | Constant of float
  | Jittered of { base : float; jitter : float }

exception Probe_failed

type 'o t = {
  resolve : 'o -> 'o;
  latency : latency;
  failure_rate : float;
  max_retries : int;
  rng : Rng.t option;
  mutable probes : int;
  mutable attempts : int;
  mutable simulated_latency : float;
}

let create ?(latency = Instant) ?(failure_rate = 0.0) ?(max_retries = 10) ?rng
    resolve =
  if not (failure_rate >= 0.0 && failure_rate < 1.0) then
    invalid_arg "Probe_source.create: failure_rate outside [0, 1)";
  if max_retries < 0 then invalid_arg "Probe_source.create: max_retries < 0";
  let needs_rng =
    failure_rate > 0.0
    || (match latency with Jittered _ -> true | Instant | Constant _ -> false)
  in
  if needs_rng && rng = None then
    invalid_arg "Probe_source.create: rng required for jitter or failures";
  {
    resolve;
    latency;
    failure_rate;
    max_retries;
    rng;
    probes = 0;
    attempts = 0;
    simulated_latency = 0.0;
  }

let sample_latency t =
  match t.latency with
  | Instant -> 0.0
  | Constant l -> l
  | Jittered { base; jitter } -> (
      match t.rng with
      | Some rng -> base +. Rng.float rng (Float.max jitter Float.epsilon)
      | None -> base)

let attempt_fails t =
  t.failure_rate > 0.0
  &&
  match t.rng with
  | Some rng -> Rng.bernoulli rng t.failure_rate
  | None -> false

let probe t o =
  let rec go retries_left =
    t.attempts <- t.attempts + 1;
    t.simulated_latency <- t.simulated_latency +. sample_latency t;
    if attempt_fails t then
      if retries_left = 0 then raise Probe_failed else go (retries_left - 1)
    else t.resolve o
  in
  let precise = go t.max_retries in
  t.probes <- t.probes + 1;
  precise

type stats = { probes : int; attempts : int; simulated_latency : float }

let stats (t : _ t) : stats =
  {
    probes = t.probes;
    attempts = t.attempts;
    simulated_latency = t.simulated_latency;
  }

let reset_stats (t : _ t) =
  t.probes <- 0;
  t.attempts <- 0;
  t.simulated_latency <- 0.0
