let distance_interval a b =
  let a1 = Interval.lo a and a2 = Interval.hi a in
  let b1 = Interval.lo b and b2 = Interval.hi b in
  let lo = Float.max 0.0 (Float.max (b1 -. a2) (a1 -. b2)) in
  let hi = Float.max (a2 -. b1) (b2 -. a1) in
  Interval.make lo hi

let classify ~epsilon a b =
  Interval.classify_le (distance_interval a b) epsilon

(* Length of B ∩ [x-ε, x+ε]: piecewise linear in x with breakpoints at
   b1∓ε and b2∓ε, so integrating it over [a1, a2] by the trapezoid rule
   between breakpoints is exact. *)
let success ~epsilon a b =
  match classify ~epsilon a b with
  | Tvl.Yes -> 1.0
  | Tvl.No -> 0.0
  | Tvl.Maybe ->
      let a1 = Interval.lo a and a2 = Interval.hi a in
      let b1 = Interval.lo b and b2 = Interval.hi b in
      let band_len x =
        Float.max 0.0 (Float.min b2 (x +. epsilon) -. Float.max b1 (x -. epsilon))
      in
      let clamp01 p = Float.min 1.0 (Float.max 0.0 p) in
      if Interval.is_point a && Interval.is_point b then
        (if Float.abs (a1 -. b1) <= epsilon then 1.0 else 0.0)
      else if Interval.is_point a then clamp01 (band_len a1 /. Interval.width b)
      else if Interval.is_point b then
        (* Symmetric case: the roles of the intervals swap. *)
        let overlap =
          Float.max 0.0
            (Float.min a2 (b1 +. epsilon) -. Float.max a1 (b1 -. epsilon))
        in
        clamp01 (overlap /. Interval.width a)
      else begin
        let breakpoints =
          List.sort_uniq Float.compare
            (List.filter
               (fun x -> x > a1 && x < a2)
               [ b1 -. epsilon; b1 +. epsilon; b2 -. epsilon; b2 +. epsilon ])
        in
        let knots = (a1 :: breakpoints) @ [ a2 ] in
        let rec integrate acc = function
          | x1 :: (x2 :: _ as rest) ->
              let piece = (band_len x1 +. band_len x2) /. 2.0 *. (x2 -. x1) in
              integrate (acc +. piece) rest
          | [ _ ] | [] -> acc
        in
        let area = integrate 0.0 knots in
        clamp01 (area /. (Interval.width a *. Interval.width b))
      end
