(** Quality-aware band join over imprecise relations.

    The paper names joins as the next operator for the QaQ framework
    (§7); this module builds that extension on the same foundations.  A
    pair [(l, r)] of records joins when their true values are within
    [ε]: [|ω^l − ω^r| <= ε].  Before probing, each side is known only up
    to its belief's support, so pairs classify YES/NO/MAYBE via the
    exact distance interval of {!Pair_distance}; the pair's laxity is
    that interval's width (0 exactly when both sides are resolved).

    Evaluation streams over the [|L| × |R|] pair space in block
    nested-loop order with the selection operator's machinery — the same
    counters, guarantees (Eqs. 8–10 over pairs) and Theorem 3.1 rules.
    The join-specific twist is probing: resolving a pair probes {e
    objects}, and a probed object benefits every later pair it appears
    in.  Object probes are therefore cached and charged at most once per
    object — this cache is what makes QaQ joins dramatically cheaper
    than per-pair probing, and the bench quantifies it. *)

type pair = { left : Interval_data.record; right : Interval_data.record }

val instance : epsilon:float -> pair Operator.instance
(** The static (cache-free) view of a pair: classification and laxity
    from the distance interval of the two supports, success under
    independent uniform beliefs.  Use this for pre-query sampling
    (selectivity estimation over sampled pairs). *)

val in_exact : epsilon:float -> pair -> bool
val exact_size :
  epsilon:float -> Interval_data.record array -> Interval_data.record array ->
  int

type report = {
  answer : pair Operator.emitted list;
      (** emitted pairs; [precise] means both sides were resolved *)
  guarantees : Quality.guarantees;
  requirements : Quality.requirements;
  counts : Cost_meter.counts;
      (** [reads] counts pair evaluations; [probes] counts {e object}
          probes (each distinct object charged once) *)
  pairs_total : int;  (** |L| · |R| *)
  object_probes : int;
      (** objects fetched (distinct objects when [share_probes] is on) *)
  probe_requests : int;  (** object lookups including cache hits *)
  answer_size : int;
  exhausted : bool;
}

val run :
  rng:Rng.t ->
  ?meter:Cost_meter.t ->
  ?emit:(pair Operator.emitted -> unit) ->
  ?collect:bool ->
  ?enforce:bool ->
  ?share_probes:bool ->
  ?policy:Policy.t ->
  requirements:Quality.requirements ->
  epsilon:float ->
  left:Interval_data.record array ->
  right:Interval_data.record array ->
  unit ->
  report
(** Evaluate the band join.  [policy] defaults to {!Policy.stingy}.
    A [Probe] decision fully resolves both sides of the pair (so the
    emitted pair has laxity 0), consulting the probe cache first.
    [share_probes] (default [true]) enables the cache; with [false]
    every probe request re-fetches and re-charges — the per-pair probing
    baseline the cache ablation compares against (classification still
    sees earlier results, only the charging changes).
    Guarantees are over the pair space and, with [enforce] (default
    [true]), always satisfy the requirements.
    @raise Invalid_argument if [epsilon < 0]. *)

val cost : Cost_model.t -> report -> float
(** [W] with [c_r] per pair evaluation, [c_p] per distinct object probe,
    and write costs per emitted pair. *)
