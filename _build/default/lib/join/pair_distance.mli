(** Distance analysis for pairs of imprecise scalars.

    The QaQ band join (the paper's §7 future work, built here) joins two
    records when their true values are within [ε] of each other.  Before
    probing, each side is only known up to its support interval, so the
    pair's true distance [|x − y|] is only known up to an interval; this
    module computes that interval exactly, and the probability that the
    distance is at most [ε] under independent uniform beliefs. *)

val distance_interval : Interval.t -> Interval.t -> Interval.t
(** Exact range of [|x − y|] for [x] in the first and [y] in the second
    interval.  Lower bound 0 iff the intervals overlap. *)

val classify : epsilon:float -> Interval.t -> Interval.t -> Tvl.t
(** Verdict of [|x − y| <= ε] from the distance interval. *)

val success : epsilon:float -> Interval.t -> Interval.t -> float
(** [P(|X − Y| <= ε)] for [X], [Y] independent and uniform on their
    intervals (degenerate intervals handled as point masses).  Exact —
    computed as a piecewise-linear integral, not an approximation.
    Returns a value in [\[0, 1\]], equal to 1 (resp. 0) when {!classify}
    says [Yes] (resp. [No]). *)
