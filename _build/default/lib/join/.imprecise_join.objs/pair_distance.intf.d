lib/join/pair_distance.mli: Interval Tvl
