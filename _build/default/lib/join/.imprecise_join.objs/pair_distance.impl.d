lib/join/pair_distance.ml: Float Interval List Tvl
