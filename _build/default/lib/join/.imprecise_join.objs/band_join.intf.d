lib/join/band_join.mli: Cost_meter Cost_model Interval_data Operator Policy Quality Rng
