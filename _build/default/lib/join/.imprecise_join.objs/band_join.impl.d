lib/join/band_join.ml: Array Cost_meter Counters Decision Float Hashtbl Interval Interval_data List Operator Pair_distance Policy Quality Tvl Uncertain
