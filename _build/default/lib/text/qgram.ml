type t = {
  q : int;
  source_length : int;
  (* Sorted distinct grams with multiplicities. *)
  grams : (string * int) array;
}

let q t = t.q
let source_length t = t.source_length
let gram_count t = Array.length t.grams

let profile ~q s =
  if q < 1 then invalid_arg "Qgram.profile: q < 1";
  let pad = String.make (q - 1) '\x00' in
  let padded = pad ^ s ^ pad in
  let n = String.length padded in
  let table = Hashtbl.create 64 in
  for i = 0 to n - q do
    let gram = String.sub padded i q in
    Hashtbl.replace table gram
      (1 + Option.value ~default:0 (Hashtbl.find_opt table gram))
  done;
  let grams =
    Hashtbl.fold (fun gram count acc -> (gram, count) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> Array.of_list
  in
  { q; source_length = String.length s; grams }

let l1_distance a b =
  if a.q <> b.q then invalid_arg "Qgram.l1_distance: mismatched q";
  (* Merge the two sorted profiles. *)
  let total = ref 0 in
  let i = ref 0 and j = ref 0 in
  let na = Array.length a.grams and nb = Array.length b.grams in
  while !i < na || !j < nb do
    if !i >= na then begin
      total := !total + snd b.grams.(!j);
      incr j
    end
    else if !j >= nb then begin
      total := !total + snd a.grams.(!i);
      incr i
    end
    else begin
      let ga, ca = a.grams.(!i) and gb, cb = b.grams.(!j) in
      let cmp = String.compare ga gb in
      if cmp = 0 then begin
        total := !total + abs (ca - cb);
        incr i;
        incr j
      end
      else if cmp < 0 then begin
        total := !total + ca;
        incr i
      end
      else begin
        total := !total + cb;
        incr j
      end
    end
  done;
  !total

let min_edit_distance a b =
  let l1 = l1_distance a b in
  let by_grams = (l1 + (2 * a.q) - 1) / (2 * a.q) in
  Stdlib.max by_grams (abs (a.source_length - b.source_length))

let max_edit_distance a b = Stdlib.max a.source_length b.source_length
