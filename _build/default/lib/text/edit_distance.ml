let distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* Keep the shorter string on the row axis for O(min) space. *)
    let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    let prev = Array.init (la + 1) Fun.id in
    let curr = Array.make (la + 1) 0 in
    for j = 1 to lb do
      curr.(0) <- j;
      for i = 1 to la do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(i) <-
          Stdlib.min
            (Stdlib.min (curr.(i - 1) + 1) (prev.(i) + 1))
            (prev.(i - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (la + 1)
    done;
    prev.(la)
  end

let within a b k =
  if k < 0 then invalid_arg "Edit_distance.within: k < 0";
  let la = String.length a and lb = String.length b in
  if abs (la - lb) > k then false
  else begin
    let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    (* Banded DP: only cells with |i - j| <= k can stay within k.  A
       sentinel above k marks out-of-band cells. *)
    let infinity_ = k + 1 in
    let prev = Array.make (la + 1) infinity_ in
    let curr = Array.make (la + 1) infinity_ in
    for i = 0 to Stdlib.min la k do
      prev.(i) <- i
    done;
    let exceeded = ref false in
    let j = ref 1 in
    while (not !exceeded) && !j <= lb do
      let lo = Stdlib.max 0 (!j - k) and hi = Stdlib.min la (!j + k) in
      Array.fill curr 0 (la + 1) infinity_;
      if lo = 0 then curr.(0) <- !j;
      let row_min = ref infinity_ in
      if lo = 0 then row_min := Stdlib.min !row_min curr.(0);
      for i = Stdlib.max 1 lo to hi do
        let cost = if a.[i - 1] = b.[!j - 1] then 0 else 1 in
        let best =
          Stdlib.min
            (Stdlib.min
               (if i - 1 >= lo then curr.(i - 1) + 1 else infinity_)
               (prev.(i) + 1))
            (prev.(i - 1) + cost)
        in
        curr.(i) <- Stdlib.min best infinity_;
        if curr.(i) < !row_min then row_min := curr.(i)
      done;
      if !row_min > k then exceeded := true;
      Array.blit curr 0 prev 0 (la + 1);
      incr j
    done;
    (not !exceeded) && prev.(la) <= k
  end
