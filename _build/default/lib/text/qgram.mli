(** Positional-padded q-gram profiles with a sound edit-distance lower
    bound.

    A string's profile is the multiset of its q-grams after padding both
    ends with [q-1] sentinel characters.  One edit operation touches at
    most [q] grams on each side, so the L1 distance between two profiles
    lower-bounds [2q] times the edit distance (count filtering, Ukkonen
    1992).  Profiles are the imprecise representation: a fraction of the
    document's size, enough to classify many strings as certain
    non-matches without ever running the expensive distance. *)

type t

val q : t -> int
val source_length : t -> int
val gram_count : t -> int
(** Distinct grams stored. *)

val profile : q:int -> string -> t
(** @raise Invalid_argument if [q < 1]. *)

val l1_distance : t -> t -> int
(** Multiset symmetric-difference size between the profiles.
    @raise Invalid_argument on mismatched [q]. *)

val min_edit_distance : t -> t -> int
(** Sound lower bound on the edit distance between the source strings:
    [max(ceil(l1 / 2q), |len difference|)]. *)

val max_edit_distance : t -> t -> int
(** Sound upper bound: the longer length (replace everything, then
    insert/delete the difference). *)
