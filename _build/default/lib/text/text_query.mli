(** Similarity selection over archived documents by edit distance.

    The querying-barrier scenario of §1.1: the predicate itself (edit
    distance to a pattern, at most [k]) is expensive, so the "probe" is
    running the real distance computation against the archived text,
    while the stored q-gram profiles classify cheap certain non-matches
    up front.  Classification is conservative on the YES side — profiles
    alone can never certify a match, so unresolved documents are NO or
    MAYBE; the quality machinery handles that shape exactly like any
    other imprecise input (YES objects simply only appear after
    probes). *)

type item = private {
  id : int;
  sketch : Qgram.t;  (** what the query site stores *)
  text : string;  (** the archived document; touching it = probe *)
  resolved : bool;
}

val make_item : id:int -> q:int -> string -> item

type query = { pattern : string; pattern_sketch : Qgram.t; k : int }

val query : q:int -> pattern:string -> k:int -> query
(** @raise Invalid_argument if [k < 0] or [q < 1] or the q mismatches
    items built with a different q (checked at evaluation time). *)

val distance_bounds : query -> item -> int * int
(** Sound (lower, upper) bounds on the true edit distance: from the
    q-gram profiles when unresolved, the exact value twice once
    resolved. *)

val instance : query -> item Operator.instance
(** Laxity is the width of the distance bound interval; success is a
    calibrated prior from where [k] falls inside the bounds. *)

val probe : item -> item
(** Run the real edit distance (conceptually: fetch the document and
    evaluate the expensive predicate). *)

val in_exact : query -> item -> bool
val exact_size : query -> item array -> int
