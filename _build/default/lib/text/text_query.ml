type item = {
  id : int;
  sketch : Qgram.t;
  text : string;
  resolved : bool;
}

let make_item ~id ~q text =
  { id; sketch = Qgram.profile ~q text; text; resolved = false }

type query = { pattern : string; pattern_sketch : Qgram.t; k : int }

let query ~q ~pattern ~k =
  if k < 0 then invalid_arg "Text_query.query: k < 0";
  { pattern; pattern_sketch = Qgram.profile ~q pattern; k }

let distance_bounds qy item =
  if item.resolved then begin
    let d = Edit_distance.distance item.text qy.pattern in
    (d, d)
  end
  else
    ( Qgram.min_edit_distance item.sketch qy.pattern_sketch,
      Qgram.max_edit_distance item.sketch qy.pattern_sketch )

let instance qy : item Operator.instance =
  {
    classify =
      (fun item ->
        let lo, hi = distance_bounds qy item in
        if hi <= qy.k then Tvl.Yes
        else if lo > qy.k then Tvl.No
        else Tvl.Maybe);
    laxity =
      (fun item ->
        let lo, hi = distance_bounds qy item in
        float_of_int (hi - lo));
    success =
      (fun item ->
        let lo, hi = distance_bounds qy item in
        if hi <= qy.k then 1.0
        else if lo > qy.k then 0.0
        else
          (* Prior: true distance uniform over the bound interval —
             the §4.1 recipe on the discrete range. *)
          float_of_int (qy.k - lo + 1) /. float_of_int (hi - lo + 1));
  }

let probe item = { item with resolved = true }

let in_exact qy item = Edit_distance.within item.text qy.pattern qy.k

let exact_size qy items =
  Array.fold_left
    (fun acc item -> if in_exact qy item then acc + 1 else acc)
    0 items
