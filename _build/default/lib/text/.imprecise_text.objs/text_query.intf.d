lib/text/text_query.mli: Operator Qgram
