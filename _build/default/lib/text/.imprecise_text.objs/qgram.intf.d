lib/text/qgram.mli:
