lib/text/text_query.ml: Array Edit_distance Operator Qgram Tvl
