lib/text/edit_distance.ml: Array Fun Stdlib String
