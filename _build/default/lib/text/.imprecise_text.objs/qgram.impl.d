lib/text/qgram.ml: Array Hashtbl List Option Stdlib String
