(** Levenshtein edit distance.

    The paper's querying-barrier example (§1.1): evaluating "the edit
    distance between two strings of text" is itself expensive, so the
    distance plays the role of the probe — computed only when the
    cheaper q-gram bounds ({!Qgram}) cannot classify a string. *)

val distance : string -> string -> int
(** Unit-cost insert/delete/substitute Levenshtein distance,
    O(|a|·|b|) time and O(min) space. *)

val within : string -> string -> int -> bool
(** [within a b k] iff [distance a b <= k], computed with a banded DP
    that early-exits — O(k·min(|a|,|b|)) — the standard trick for
    threshold queries.  @raise Invalid_argument if [k < 0]. *)
