(** Persistence for generated workloads.

    Serialises the §5.2 synthetic objects and interval-data records to
    CSV so that a workload can be generated once, archived, and replayed
    across runs or shared with other tools.  Round-tripping is exact for
    the label/flag fields and up to shortest-round-trip float printing
    for the numeric ones. *)

val synthetic_header : string list

val synthetic_to_rows : Synthetic.obj array -> string list list
(** Header row included. *)

val synthetic_of_rows : string list list -> Synthetic.obj array
(** @raise Failure on a malformed header, row arity or field. *)

val write_synthetic : string -> Synthetic.obj array -> unit
val read_synthetic : string -> Synthetic.obj array

val records_header : string list

val records_to_rows : Interval_data.record array -> string list list
(** Interval and exact beliefs only.
    @raise Invalid_argument on a Gaussian belief (not representable in
    this flat schema). *)

val records_of_rows : string list list -> Interval_data.record array
val write_records : string -> Interval_data.record array -> unit
val read_records : string -> Interval_data.record array
