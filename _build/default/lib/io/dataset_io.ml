let float_to_string x = Printf.sprintf "%.17g" x

let float_of_field name s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failwith (Printf.sprintf "Dataset_io: bad float in %s: %S" name s)

let int_of_field name s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Dataset_io: bad int in %s: %S" name s)

let bool_to_field b = if b then "1" else "0"

let bool_of_field name = function
  | "1" -> true
  | "0" -> false
  | s -> failwith (Printf.sprintf "Dataset_io: bad bool in %s: %S" name s)

(* ---- synthetic objects -------------------------------------------- *)

let synthetic_header =
  [ "id"; "label"; "laxity"; "success"; "probe_yes"; "resolved" ]

let label_to_field = Tvl.to_string

let label_of_field = function
  | "YES" -> Tvl.Yes
  | "NO" -> Tvl.No
  | "MAYBE" -> Tvl.Maybe
  | s -> failwith (Printf.sprintf "Dataset_io: bad label %S" s)

let synthetic_to_rows objects =
  synthetic_header
  :: (Array.to_list objects
     |> List.map (fun (o : Synthetic.obj) ->
            [
              string_of_int o.id;
              label_to_field o.label;
              float_to_string o.laxity;
              float_to_string o.success;
              bool_to_field o.probe_yes;
              bool_to_field o.resolved;
            ]))

let check_header expected = function
  | header :: rows ->
      if header <> expected then
        failwith
          (Printf.sprintf "Dataset_io: unexpected header %s"
             (String.concat "," header));
      rows
  | [] -> failwith "Dataset_io: empty file"

let synthetic_of_rows rows =
  check_header synthetic_header rows
  |> List.map (function
       | [ id; label; laxity; success; probe_yes; resolved ] ->
           Synthetic.make ~id:(int_of_field "id" id)
             ~label:(label_of_field label)
             ~laxity:(float_of_field "laxity" laxity)
             ~success:(float_of_field "success" success)
             ~probe_yes:(bool_of_field "probe_yes" probe_yes)
             ~resolved:(bool_of_field "resolved" resolved)
       | row ->
           failwith
             (Printf.sprintf "Dataset_io: bad synthetic row arity %d"
                (List.length row)))
  |> Array.of_list

let write_synthetic path objects = Csv.write_file path (synthetic_to_rows objects)
let read_synthetic path = synthetic_of_rows (Csv.read_file path)

(* ---- interval-data records ---------------------------------------- *)

let records_header = [ "id"; "belief_lo"; "belief_hi"; "truth" ]

let records_to_rows records =
  records_header
  :: (Array.to_list records
     |> List.map (fun (r : Interval_data.record) ->
            let support =
              match r.belief with
              | Uncertain.Exact x -> Interval.point x
              | Uncertain.Interval i -> i
              | Uncertain.Gaussian _ ->
                  invalid_arg
                    "Dataset_io.records_to_rows: Gaussian beliefs are not \
                     representable in the flat schema"
            in
            [
              string_of_int r.id;
              float_to_string (Interval.lo support);
              float_to_string (Interval.hi support);
              float_to_string r.truth;
            ]))

let records_of_rows rows =
  check_header records_header rows
  |> List.map (function
       | [ id; lo; hi; truth ] ->
           let lo = float_of_field "belief_lo" lo in
           let hi = float_of_field "belief_hi" hi in
           let belief =
             if lo = hi then Uncertain.exact lo else Uncertain.interval lo hi
           in
           {
             Interval_data.id = int_of_field "id" id;
             belief;
             truth = float_of_field "truth" truth;
           }
       | row ->
           failwith
             (Printf.sprintf "Dataset_io: bad record row arity %d"
                (List.length row)))
  |> Array.of_list

let write_records path records = Csv.write_file path (records_to_rows records)
let read_records path = records_of_rows (Csv.read_file path)
