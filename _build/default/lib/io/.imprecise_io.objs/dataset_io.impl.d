lib/io/dataset_io.ml: Array Csv Interval Interval_data List Printf String Synthetic Tvl Uncertain
