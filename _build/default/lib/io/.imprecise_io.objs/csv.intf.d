lib/io/csv.mli:
