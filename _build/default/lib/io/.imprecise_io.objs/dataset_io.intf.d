lib/io/dataset_io.mli: Interval_data Synthetic
