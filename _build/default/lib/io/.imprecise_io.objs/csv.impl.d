lib/io/csv.ml: Buffer Fun List String
