(* Exhaustive tests of the three-valued Kleene logic. *)

open Tvl

let tvl = Alcotest.testable Tvl.pp Tvl.equal
let all_values = [ Yes; No; Maybe ]

let test_and_table () =
  let expect = function
    | No, _ | _, No -> No
    | Maybe, _ | _, Maybe -> Maybe
    | Yes, Yes -> Yes
  in
  List.iter
    (fun a ->
      List.iter
        (fun b -> Alcotest.check tvl "and" (expect (a, b)) (and_ a b))
        all_values)
    all_values

let test_or_table () =
  let expect = function
    | Yes, _ | _, Yes -> Yes
    | Maybe, _ | _, Maybe -> Maybe
    | No, No -> No
  in
  List.iter
    (fun a ->
      List.iter
        (fun b -> Alcotest.check tvl "or" (expect (a, b)) (or_ a b))
        all_values)
    all_values

let test_not () =
  Alcotest.check tvl "not yes" No (not_ Yes);
  Alcotest.check tvl "not no" Yes (not_ No);
  Alcotest.check tvl "not maybe" Maybe (not_ Maybe)

let test_de_morgan () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check tvl "de morgan and"
            (not_ (and_ a b))
            (or_ (not_ a) (not_ b));
          Alcotest.check tvl "de morgan or"
            (not_ (or_ a b))
            (and_ (not_ a) (not_ b)))
        all_values)
    all_values

let test_lattice_laws () =
  List.iter
    (fun a ->
      Alcotest.check tvl "and idempotent" a (and_ a a);
      Alcotest.check tvl "or idempotent" a (or_ a a);
      List.iter
        (fun b ->
          Alcotest.check tvl "and commutes" (and_ a b) (and_ b a);
          Alcotest.check tvl "or commutes" (or_ a b) (or_ b a);
          Alcotest.check tvl "absorption" a (and_ a (or_ a b)))
        all_values)
    all_values

let test_all_any () =
  Alcotest.check tvl "all empty" Yes (all []);
  Alcotest.check tvl "any empty" No (any []);
  Alcotest.check tvl "all with maybe" Maybe (all [ Yes; Maybe; Yes ]);
  Alcotest.check tvl "all with no" No (all [ Yes; Maybe; No ]);
  Alcotest.check tvl "any with yes" Yes (any [ No; Maybe; Yes ]);
  Alcotest.check tvl "any maybes" Maybe (any [ No; Maybe ])

let test_bool_conversions () =
  Alcotest.check tvl "of_bool true" Yes (of_bool true);
  Alcotest.check tvl "of_bool false" No (of_bool false);
  Alcotest.(check (option bool)) "to_bool yes" (Some true) (to_bool Yes);
  Alcotest.(check (option bool)) "to_bool no" (Some false) (to_bool No);
  Alcotest.(check (option bool)) "to_bool maybe" None (to_bool Maybe)

let test_ordering_and_strings () =
  Alcotest.(check bool) "No < Maybe" true (compare No Maybe < 0);
  Alcotest.(check bool) "Maybe < Yes" true (compare Maybe Yes < 0);
  Alcotest.(check string) "YES" "YES" (to_string Yes);
  Alcotest.(check string) "MAYBE" "MAYBE" (to_string Maybe);
  Alcotest.(check bool) "is_definite" true (is_definite Yes);
  Alcotest.(check bool) "maybe not definite" false (is_definite Maybe)

let suite =
  [
    ("conjunction truth table", `Quick, test_and_table);
    ("disjunction truth table", `Quick, test_or_table);
    ("negation", `Quick, test_not);
    ("de morgan", `Quick, test_de_morgan);
    ("lattice laws", `Quick, test_lattice_laws);
    ("all/any", `Quick, test_all_any);
    ("bool conversions", `Quick, test_bool_conversions);
    ("ordering and strings", `Quick, test_ordering_and_strings);
  ]
