(* Tests for quality requirements, guarantees and diagnostics (§2). *)

let checkf = Alcotest.(check (float 1e-12))
let checkb = Alcotest.(check bool)

let test_requirements_validation () =
  let r = Quality.requirements ~precision:0.9 ~recall:0.5 ~laxity:50.0 in
  checkf "precision" 0.9 r.precision;
  Alcotest.check_raises "precision above 1"
    (Invalid_argument "Quality.requirements: precision outside [0, 1]")
    (fun () ->
      ignore (Quality.requirements ~precision:1.1 ~recall:0.5 ~laxity:1.0));
  Alcotest.check_raises "negative recall"
    (Invalid_argument "Quality.requirements: recall outside [0, 1]") (fun () ->
      ignore (Quality.requirements ~precision:0.5 ~recall:(-0.1) ~laxity:1.0));
  Alcotest.check_raises "negative laxity"
    (Invalid_argument "Quality.requirements: laxity must be finite and >= 0")
    (fun () ->
      ignore (Quality.requirements ~precision:0.5 ~recall:0.5 ~laxity:(-1.0)))

let test_meets () =
  let r = Quality.requirements ~precision:0.8 ~recall:0.5 ~laxity:10.0 in
  let g p rc l : Quality.guarantees =
    { precision = p; recall = rc; max_laxity = l }
  in
  checkb "all met" true (Quality.meets (g 0.9 0.6 5.0) r);
  checkb "boundary met" true (Quality.meets (g 0.8 0.5 10.0) r);
  checkb "precision short" false (Quality.meets (g 0.79 0.6 5.0) r);
  checkb "recall short" false (Quality.meets (g 0.9 0.4 5.0) r);
  checkb "laxity over" false (Quality.meets (g 0.9 0.6 10.5) r)

let test_diagnostics_formulas () =
  (* Eq. 3/4 on plain counts. *)
  checkf "precision" 0.75
    (Quality.Diagnostics.precision ~answer_size:4 ~answer_in_exact:3);
  checkf "recall" 0.6
    (Quality.Diagnostics.recall ~exact_size:5 ~answer_in_exact:3);
  (* Empty-set conventions. *)
  checkf "empty answer precision" 1.0
    (Quality.Diagnostics.precision ~answer_size:0 ~answer_in_exact:0);
  checkf "empty exact recall" 1.0
    (Quality.Diagnostics.recall ~exact_size:0 ~answer_in_exact:0)

let test_diagnostics_validation () =
  Alcotest.check_raises "inconsistent precision counts"
    (Invalid_argument "Quality.Diagnostics.precision") (fun () ->
      ignore (Quality.Diagnostics.precision ~answer_size:2 ~answer_in_exact:3));
  Alcotest.check_raises "negative"
    (Invalid_argument "Quality.Diagnostics.recall") (fun () ->
      ignore (Quality.Diagnostics.recall ~exact_size:(-1) ~answer_in_exact:0))

let test_exhaustive () =
  checkf "perfect precision" 1.0 Quality.exhaustive.precision;
  checkf "perfect recall" 1.0 Quality.exhaustive.recall

let suite =
  [
    ("requirements validation", `Quick, test_requirements_validation);
    ("meets", `Quick, test_meets);
    ("diagnostics formulas", `Quick, test_diagnostics_formulas);
    ("diagnostics validation", `Quick, test_diagnostics_validation);
    ("exhaustive requirements", `Quick, test_exhaustive);
  ]
