(* Tests for selection predicates and their three-way evaluation. *)

let tvl = Alcotest.testable Tvl.pp Tvl.equal
let checkf tol = Alcotest.(check (float tol))

let test_eval_strictness () =
  Alcotest.(check bool) "ge includes bound" true (Predicate.eval (Predicate.ge 5.0) 5.0);
  Alcotest.(check bool) "gt excludes bound" false (Predicate.eval (Predicate.gt 5.0) 5.0);
  Alcotest.(check bool) "le includes bound" true (Predicate.eval (Predicate.le 5.0) 5.0);
  Alcotest.(check bool) "lt excludes bound" false (Predicate.eval (Predicate.lt 5.0) 5.0)

let test_compound_eval () =
  let p = Predicate.(ge 0.0 &&& le 10.0) in
  Alcotest.(check bool) "in range" true (Predicate.eval p 5.0);
  Alcotest.(check bool) "out of range" false (Predicate.eval p 11.0);
  let q = Predicate.(lt 0.0 ||| gt 10.0) in
  Alcotest.(check bool) "disjunction left" true (Predicate.eval q (-1.0));
  Alcotest.(check bool) "negation" true (Predicate.eval (Predicate.not_ q) 5.0)

let test_constructor_errors () =
  Alcotest.check_raises "reversed between"
    (Invalid_argument "Predicate.between: reversed bounds") (fun () ->
      ignore (Predicate.between 5.0 1.0));
  Alcotest.check_raises "non-finite"
    (Invalid_argument "Predicate.ge: bound must be finite") (fun () ->
      ignore (Predicate.ge Float.nan))

let test_classify_compound () =
  let p = Predicate.(ge 0.0 &&& le 10.0) in
  Alcotest.check tvl "inside" Tvl.Yes
    (Predicate.classify p (Uncertain.interval 2.0 8.0));
  Alcotest.check tvl "straddles upper" Tvl.Maybe
    (Predicate.classify p (Uncertain.interval 8.0 12.0));
  Alcotest.check tvl "outside" Tvl.No
    (Predicate.classify p (Uncertain.interval 11.0 12.0));
  (* A hole: NOT(2 <= v <= 4) over support [1,5] is MAYBE even though the
     support's endpoints both satisfy the predicate — interval endpoints
     alone would get this wrong; the satisfying-set semantics gets it
     right. *)
  let hole = Predicate.not_ (Predicate.between 2.0 4.0) in
  Alcotest.check tvl "hole detected" Tvl.Maybe
    (Predicate.classify hole (Uncertain.interval 1.0 5.0))

let test_success_with_hole () =
  (* Uniform on [0, 10]; satisfying set = [0,2] u [8,10] has mass 0.4. *)
  let p = Predicate.(le 2.0 ||| ge 8.0) in
  checkf 1e-9 "union mass" 0.4 (Predicate.success p (Uncertain.interval 0.0 10.0));
  (* Complement has mass 0.6. *)
  checkf 1e-9 "complement mass" 0.6
    (Predicate.success (Predicate.not_ p) (Uncertain.interval 0.0 10.0))

let test_success_gaussian_compound () =
  let g = Uncertain.gaussian ~mean:0.0 ~stddev:1.0 () in
  let p = Predicate.(le (-1.0) ||| ge 1.0) in
  (* 2 * (1 - Phi(1)) = 0.3173105. *)
  checkf 1e-5 "two-tail mass" 0.3173105 (Predicate.success p g)

(* Random predicate trees with integer bounds, checked against direct
   evaluation on off-boundary points. *)

let pred_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun a -> Predicate.ge (float_of_int a)) (int_range (-20) 20);
              map (fun a -> Predicate.le (float_of_int a)) (int_range (-20) 20);
              (let* a = int_range (-20) 20 in
               let* w = int_range 0 15 in
               return (Predicate.between (float_of_int a) (float_of_int (a + w))));
            ]
        in
        if n <= 1 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun a b -> Predicate.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Predicate.Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Predicate.Not a) (self (n - 1));
            ]))

let prop_satisfying_set_agrees_with_eval =
  QCheck2.Test.make ~name:"satisfying set agrees with eval off boundaries"
    ~count:500
    QCheck2.Gen.(pair pred_gen (int_range (-30) 30))
    (fun (p, k) ->
      let x = float_of_int k +. 0.5 in
      Real_set.mem (Predicate.satisfying_set p) x = Predicate.eval p x)

let prop_classify_sound =
  QCheck2.Test.make
    ~name:"YES/NO classification is sound for sampled values" ~count:300
    QCheck2.Gen.(pair pred_gen (pair (int_range (-25) 25) (int_range 1 10)))
    (fun (p, (lo, w)) ->
      (* Support with half-integer endpoints avoids boundary ties. *)
      let support =
        Interval.make (float_of_int lo +. 0.5) (float_of_int (lo + w) +. 0.5)
      in
      let u = Uncertain.Interval support in
      let rng = Rng.create 3 in
      let verdict = Predicate.classify p u in
      let ok = ref true in
      for _ = 1 to 30 do
        let x = Interval.sample rng support in
        match verdict with
        | Tvl.Yes -> if not (Predicate.eval p x) then ok := false
        | Tvl.No -> if Predicate.eval p x then ok := false
        | Tvl.Maybe -> ()
      done;
      !ok)

let prop_success_in_bounds_and_consistent =
  QCheck2.Test.make ~name:"success in [0,1], 1 on YES, 0 on NO" ~count:300
    QCheck2.Gen.(pair pred_gen (pair (int_range (-25) 25) (int_range 1 10)))
    (fun (p, (lo, w)) ->
      let u =
        Uncertain.interval (float_of_int lo +. 0.5) (float_of_int (lo + w) +. 0.5)
      in
      let s = Predicate.success p u in
      (s >= 0.0 && s <= 1.0)
      &&
      match Predicate.classify p u with
      | Tvl.Yes -> s = 1.0
      | Tvl.No -> s = 0.0
      | Tvl.Maybe -> true)

let prop_success_complement =
  QCheck2.Test.make ~name:"success p + success (not p) = 1 on intervals"
    ~count:300
    QCheck2.Gen.(pair pred_gen (pair (int_range (-25) 25) (int_range 1 10)))
    (fun (p, (lo, w)) ->
      let u =
        Uncertain.interval (float_of_int lo +. 0.5) (float_of_int (lo + w) +. 0.5)
      in
      let s = Predicate.success p u +. Predicate.success (Predicate.not_ p) u in
      Float.abs (s -. 1.0) < 1e-9)

let suite =
  [
    ("eval strictness", `Quick, test_eval_strictness);
    ("compound eval", `Quick, test_compound_eval);
    ("constructor errors", `Quick, test_constructor_errors);
    ("compound classification", `Quick, test_classify_compound);
    ("success with holes", `Quick, test_success_with_hole);
    ("gaussian compound success", `Quick, test_success_gaussian_compound);
    QCheck_alcotest.to_alcotest prop_satisfying_set_agrees_with_eval;
    QCheck_alcotest.to_alcotest prop_classify_sound;
    QCheck_alcotest.to_alcotest prop_success_in_bounds_and_consistent;
    QCheck_alcotest.to_alcotest prop_success_complement;
  ]
