(* Tests for the synthetic (§5.2) and interval-data workload generators. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_config_validation () =
  Alcotest.check_raises "fractions sum above 1"
    (Invalid_argument "Synthetic.config: invalid fractions") (fun () ->
      ignore (Synthetic.config ~f_y:0.6 ~f_m:0.6 ()));
  Alcotest.check_raises "negative total"
    (Invalid_argument "Synthetic.config: total < 0") (fun () ->
      ignore (Synthetic.config ~total:(-1) ()))

let test_label_fractions () =
  let data =
    Synthetic.generate (Rng.create 3)
      (Synthetic.config ~total:50000 ~f_y:0.3 ~f_m:0.1 ())
  in
  let count label =
    Array.fold_left
      (fun acc (o : Synthetic.obj) -> if Tvl.equal o.label label then acc + 1 else acc)
      0 data
  in
  let frac label = float_of_int (count label) /. 50000.0 in
  checkb "f_y" true (Float.abs (frac Tvl.Yes -. 0.3) < 0.01);
  checkb "f_m" true (Float.abs (frac Tvl.Maybe -. 0.1) < 0.01);
  checkb "f_n" true (Float.abs (frac Tvl.No -. 0.6) < 0.01)

let test_ground_truth_consistency () =
  let data =
    Synthetic.generate (Rng.create 4) (Synthetic.config ~total:5000 ())
  in
  Array.iter
    (fun (o : Synthetic.obj) ->
      (match o.label with
      | Tvl.Yes -> checkb "yes in exact" true o.probe_yes
      | Tvl.No -> checkb "no not in exact" false o.probe_yes
      | Tvl.Maybe -> ());
      (* The instance view. *)
      checkb "classify matches label" true
        (Tvl.equal (Synthetic.instance.classify o) o.label);
      checkb "laxity in range" true (o.laxity >= 0.0 && o.laxity < 100.0);
      checkb "success in range" true (o.success >= 0.0 && o.success <= 1.0);
      (* Probing resolves definitively with zero laxity. *)
      let p = Synthetic.probe o in
      checkb "probe definite" true
        (Tvl.is_definite (Synthetic.instance.classify p));
      checkb "probe laxity" true (Synthetic.instance.laxity p = 0.0);
      checkb "probe preserves truth" true (Synthetic.in_exact p = Synthetic.in_exact o))
    data

let test_maybe_success_calibration () =
  (* Among MAYBE objects, P(probe_yes) should track s(o): bucket by s and
     compare frequencies. *)
  let data =
    Synthetic.generate (Rng.create 5)
      (Synthetic.config ~total:100000 ~f_y:0.0 ~f_m:1.0 ())
  in
  let buckets = Array.make 5 (0, 0) in
  Array.iter
    (fun (o : Synthetic.obj) ->
      let b = Stdlib.min 4 (int_of_float (o.success *. 5.0)) in
      let yes, total = buckets.(b) in
      buckets.(b) <- ((if o.probe_yes then yes + 1 else yes), total + 1))
    data;
  Array.iteri
    (fun b (yes, total) ->
      let expected = (float_of_int b +. 0.5) /. 5.0 in
      let rate = float_of_int yes /. float_of_int total in
      checkb
        (Printf.sprintf "bucket %d calibrated" b)
        true
        (Float.abs (rate -. expected) < 0.02))
    buckets

let test_skewed_generator () =
  let cfg = Synthetic.config ~total:30000 () in
  let uniform = Synthetic.generate (Rng.create 6) cfg in
  let skewed =
    Synthetic.generate_skewed (Rng.create 6) cfg ~laxity_exponent:3.0
      ~success_exponent:1.0
  in
  let mean_laxity data =
    Stats.mean (Array.map (fun (o : Synthetic.obj) -> o.laxity) data)
  in
  checkb "uniform laxity mean near 50" true
    (Float.abs (mean_laxity uniform -. 50.0) < 1.5);
  (* E[L u^3] = L/4. *)
  checkb "skewed laxity mean near 25" true
    (Float.abs (mean_laxity skewed -. 25.0) < 1.5);
  Alcotest.check_raises "bad exponent"
    (Invalid_argument "Synthetic.generate_skewed: non-positive exponent")
    (fun () ->
      ignore
        (Synthetic.generate_skewed (Rng.create 1) cfg ~laxity_exponent:0.0
           ~success_exponent:1.0))

let test_exact_size () =
  let data =
    Synthetic.generate (Rng.create 7)
      (Synthetic.config ~total:20000 ~f_y:0.2 ~f_m:0.2 ())
  in
  (* E[|E|] = f_y + f_m * E[s] = 0.2 + 0.1 of the input. *)
  let e = float_of_int (Synthetic.exact_size data) /. 20000.0 in
  checkb "exact set near 30%" true (Float.abs (e -. 0.3) < 0.02)

(* Interval-data generator: belief always contains the truth, and the
   operator instance is sound. *)
let prop_interval_data_sound =
  QCheck2.Test.make ~name:"interval records: truth inside belief; classification sound"
    ~count:50
    QCheck2.Gen.(pair (int_range 0 1000) (float_range 1.0 100.0))
    (fun (seed, max_width) ->
      let rng = Rng.create seed in
      let records =
        Interval_data.uniform_intervals rng ~n:200
          ~value_range:(Interval.make 0.0 1000.0) ~max_width
      in
      let pred = Predicate.ge 500.0 in
      let instance = Interval_data.instance pred in
      Array.for_all
        (fun (r : Interval_data.record) ->
          Interval.contains (Uncertain.support r.belief) r.truth
          &&
          match instance.classify r with
          | Tvl.Yes -> Predicate.eval pred r.truth
          | Tvl.No -> not (Predicate.eval pred r.truth)
          | Tvl.Maybe -> true)
        records)

let test_gaussian_beliefs () =
  let records =
    Interval_data.gaussian_beliefs (Rng.create 8) ~n:500 ~mean:50.0 ~stddev:10.0
      ~noise:2.0
  in
  checki "count" 500 (Array.length records);
  Array.iter
    (fun (r : Interval_data.record) ->
      checkb "truth in 4-sigma support" true
        (Interval.contains (Uncertain.support r.belief) r.truth);
      checkb "laxity is the noise scale" true
        (Uncertain.laxity r.belief = 2.0))
    records;
  (* Probing collapses the belief. *)
  let probed = Interval_data.probe records.(0) in
  checkb "probe collapses" true (Uncertain.laxity probed.belief = 0.0)

let suite =
  [
    ("config validation", `Quick, test_config_validation);
    ("label fractions", `Quick, test_label_fractions);
    ("ground truth consistency", `Quick, test_ground_truth_consistency);
    ("maybe success calibration", `Slow, test_maybe_success_calibration);
    ("skewed generator", `Quick, test_skewed_generator);
    ("exact set size", `Quick, test_exact_size);
    QCheck_alcotest.to_alcotest prop_interval_data_sound;
    ("gaussian beliefs", `Quick, test_gaussian_beliefs);
  ]
