(* Unit and property tests for intervals. *)

let tvl = Alcotest.testable Tvl.pp Tvl.equal
let checkf = Alcotest.(check (float 1e-12))

let test_make_errors () =
  Alcotest.check_raises "reversed" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (Interval.make 2.0 1.0));
  Alcotest.check_raises "nan"
    (Invalid_argument "Interval.make: bounds must be finite") (fun () ->
      ignore (Interval.make Float.nan 1.0))

let test_basic_accessors () =
  let i = Interval.make 2.0 6.0 in
  checkf "lo" 2.0 (Interval.lo i);
  checkf "hi" 6.0 (Interval.hi i);
  checkf "width" 4.0 (Interval.width i);
  checkf "midpoint" 4.0 (Interval.midpoint i);
  Alcotest.(check bool) "not a point" false (Interval.is_point i);
  Alcotest.(check bool) "point" true (Interval.is_point (Interval.point 3.0))

let test_set_operations () =
  let a = Interval.make 0.0 5.0 and b = Interval.make 3.0 8.0 in
  Alcotest.(check bool) "intersects" true (Interval.intersects a b);
  (match Interval.intersection a b with
  | Some i ->
      checkf "inter lo" 3.0 (Interval.lo i);
      checkf "inter hi" 5.0 (Interval.hi i)
  | None -> Alcotest.fail "expected intersection");
  let c = Interval.make 6.0 7.0 in
  Alcotest.(check bool) "disjoint" false (Interval.intersects a c);
  Alcotest.(check bool) "disjoint intersection" true
    (Interval.intersection a c = None);
  let h = Interval.hull a c in
  checkf "hull lo" 0.0 (Interval.lo h);
  checkf "hull hi" 7.0 (Interval.hi h);
  Alcotest.(check bool) "subset" true
    (Interval.subset (Interval.make 1.0 2.0) a);
  Alcotest.(check bool) "not subset" false (Interval.subset b a)

let test_classification () =
  let i = Interval.make 1.0 3.0 in
  Alcotest.check tvl "ge below" Tvl.Yes (Interval.classify_ge i 0.5);
  Alcotest.check tvl "ge at lo" Tvl.Yes (Interval.classify_ge i 1.0);
  Alcotest.check tvl "ge inside" Tvl.Maybe (Interval.classify_ge i 2.0);
  Alcotest.check tvl "ge above" Tvl.No (Interval.classify_ge i 3.5);
  Alcotest.check tvl "le above" Tvl.Yes (Interval.classify_le i 3.0);
  Alcotest.check tvl "le inside" Tvl.Maybe (Interval.classify_le i 1.5);
  Alcotest.check tvl "le below" Tvl.No (Interval.classify_le i 0.5);
  Alcotest.check tvl "between covers" Tvl.Yes (Interval.classify_between i 0.0 4.0);
  Alcotest.check tvl "between partial" Tvl.Maybe (Interval.classify_between i 2.0 4.0);
  Alcotest.check tvl "between disjoint" Tvl.No (Interval.classify_between i 4.0 5.0)

let test_paper_success_example () =
  (* §1: o1 = [1,3] with λ = (o >= 2): s = (3-2)/(3-1) = 0.5. *)
  let o1 = Interval.make 1.0 3.0 in
  checkf "paper example" 0.5 (Interval.success_ge o1 2.0);
  (* o2 = [3,4] is YES, o3 = [-2,-1] is NO. *)
  Alcotest.check tvl "o2 yes" Tvl.Yes (Interval.classify_ge (Interval.make 3.0 4.0) 2.0);
  Alcotest.check tvl "o3 no" Tvl.No (Interval.classify_ge (Interval.make (-2.0) (-1.0)) 2.0)

let test_success_degenerate () =
  let p = Interval.point 5.0 in
  checkf "point satisfying" 1.0 (Interval.success_ge p 5.0);
  checkf "point failing" 0.0 (Interval.success_ge p 6.0);
  checkf "between point in" 1.0 (Interval.success_between p 4.0 6.0);
  checkf "between point out" 0.0 (Interval.success_between p 6.0 7.0);
  checkf "between reversed bounds" 0.0
    (Interval.success_between (Interval.make 0.0 1.0) 2.0 1.0)

(* Properties over random intervals. *)

let interval_gen =
  QCheck2.Gen.(
    let* lo = float_range (-100.0) 100.0 in
    let* w = float_range 0.0 50.0 in
    return (Interval.make lo (lo +. w)))

let prop_sample_within =
  QCheck2.Test.make ~name:"sample lies within interval" ~count:500 interval_gen
    (fun i ->
      let rng = Rng.create 33 in
      let x = Interval.sample rng i in
      Interval.contains i x)

let prop_success_bounds =
  QCheck2.Test.make ~name:"success probabilities lie in [0,1]" ~count:500
    QCheck2.Gen.(pair interval_gen (float_range (-150.0) 150.0))
    (fun (i, x) ->
      let ok p = p >= 0.0 && p <= 1.0 in
      ok (Interval.success_ge i x)
      && ok (Interval.success_le i x)
      && ok (Interval.success_between i x (x +. 10.0)))

let prop_success_matches_classification =
  QCheck2.Test.make ~name:"classification extremes match success" ~count:500
    QCheck2.Gen.(pair interval_gen (float_range (-150.0) 150.0))
    (fun (i, x) ->
      match Interval.classify_ge i x with
      | Tvl.Yes -> Interval.success_ge i x = 1.0
      | Tvl.No -> Interval.success_ge i x = 0.0
      | Tvl.Maybe ->
          let s = Interval.success_ge i x in
          s >= 0.0 && s <= 1.0)

let prop_ge_le_complement =
  QCheck2.Test.make ~name:"success_ge + success_le = 1 (continuous)" ~count:500
    QCheck2.Gen.(pair interval_gen (float_range (-150.0) 150.0))
    (fun (i, x) ->
      QCheck2.assume (not (Interval.is_point i));
      Float.abs (Interval.success_ge i x +. Interval.success_le i x -. 1.0)
      < 1e-9)

let prop_clamp =
  QCheck2.Test.make ~name:"clamp lands inside" ~count:500
    QCheck2.Gen.(pair interval_gen (float_range (-500.0) 500.0))
    (fun (i, x) -> Interval.contains i (Interval.clamp i x))

let suite =
  [
    ("constructor errors", `Quick, test_make_errors);
    ("accessors", `Quick, test_basic_accessors);
    ("set operations", `Quick, test_set_operations);
    ("classification", `Quick, test_classification);
    ("paper success example", `Quick, test_paper_success_example);
    ("degenerate success", `Quick, test_success_degenerate);
    QCheck_alcotest.to_alcotest prop_sample_within;
    QCheck_alcotest.to_alcotest prop_success_bounds;
    QCheck_alcotest.to_alcotest prop_success_matches_classification;
    QCheck_alcotest.to_alcotest prop_ge_le_complement;
    QCheck_alcotest.to_alcotest prop_clamp;
  ]
