(* Tests for multi-attribute tuples, Kleene conditions with
   normalisation, attribute-level probe planning and relational
   selection. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let tvl = Alcotest.testable Tvl.pp Tvl.equal

let s2 = Relation.schema [ "temp"; "battery" ]

let mk ?(id = 0) beliefs truths =
  Relation.tuple ~id ~beliefs:(Array.of_list beliefs)
    ~truths:(Array.of_list truths)

let test_schema () =
  checki "arity" 2 (Relation.arity s2);
  checki "attr index" 1 (Relation.attr s2 "battery");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Relation.schema: duplicate attribute \"a\"") (fun () ->
      ignore (Relation.schema [ "a"; "a" ]));
  checkb "missing raises" true
    (try
       ignore (Relation.attr s2 "nope");
       false
     with Not_found -> true)

let test_tuple_validation () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Relation.tuple: arity mismatch") (fun () ->
      ignore (mk [ Uncertain.exact 1.0 ] [ 1.0; 2.0 ]));
  Alcotest.check_raises "truth outside belief"
    (Invalid_argument "Relation.tuple: truth of attribute 0 outside its belief")
    (fun () -> ignore (mk [ Uncertain.interval 0.0 1.0 ] [ 5.0 ]))

let cond_hot_low =
  (* temp >= 30 AND battery <= 20 *)
  Relation.And
    (Relation.atom s2 "temp" (Predicate.ge 30.0),
     Relation.atom s2 "battery" (Predicate.le 20.0))

let test_classify_kleene () =
  let t = mk [ Uncertain.interval 35.0 40.0; Uncertain.interval 10.0 15.0 ] [ 37.0; 12.0 ] in
  Alcotest.check tvl "both yes" Tvl.Yes (Relation.classify cond_hot_low t);
  let t = mk [ Uncertain.interval 25.0 35.0; Uncertain.interval 10.0 15.0 ] [ 33.0; 12.0 ] in
  Alcotest.check tvl "one maybe" Tvl.Maybe (Relation.classify cond_hot_low t);
  let t = mk [ Uncertain.interval 10.0 20.0; Uncertain.interval 10.0 15.0 ] [ 15.0; 12.0 ] in
  Alcotest.check tvl "one no kills and" Tvl.No (Relation.classify cond_hot_low t)

let test_normalisation_recovers_tautology () =
  (* (temp >= 10) OR (temp <= 20) is a tautology; naive Kleene over two
     separate atoms would say MAYBE for a belief straddling both
     thresholds. *)
  let tautology =
    Relation.Or
      (Relation.atom s2 "temp" (Predicate.ge 10.0),
       Relation.atom s2 "temp" (Predicate.le 20.0))
  in
  let t = mk [ Uncertain.interval 5.0 25.0; Uncertain.exact 50.0 ] [ 15.0; 50.0 ] in
  Alcotest.check tvl "tautology detected" Tvl.Yes (Relation.classify tautology t);
  (* Same with a contradiction under AND. *)
  let contradiction =
    Relation.And
      (Relation.atom s2 "temp" (Predicate.ge 20.0),
       Relation.atom s2 "temp" (Predicate.lt 10.0))
  in
  Alcotest.check tvl "contradiction detected" Tvl.No
    (Relation.classify contradiction t);
  (* Negation pushes to the atom. *)
  let negated = Relation.Not (Relation.atom s2 "temp" (Predicate.ge 30.0)) in
  let cool = mk [ Uncertain.interval 0.0 10.0; Uncertain.exact 0.0 ] [ 5.0; 0.0 ] in
  Alcotest.check tvl "negation" Tvl.Yes (Relation.classify negated cool)

let test_success_independent_product () =
  (* temp MAYBE with mass 0.5, battery MAYBE with mass 0.25:
     conjunction success = 0.125 under independence. *)
  let t =
    mk [ Uncertain.interval 25.0 35.0; Uncertain.interval 15.0 35.0 ] [ 30.0; 20.0 ]
  in
  Alcotest.(check (float 1e-9)) "product" 0.125
    (Relation.success cond_hot_low t);
  (* Definite conditions pin to 0/1. *)
  let yes = mk [ Uncertain.exact 40.0; Uncertain.exact 10.0 ] [ 40.0; 10.0 ] in
  Alcotest.(check (float 0.0)) "yes" 1.0 (Relation.success cond_hot_low yes)

let test_laxity_over_mentioned () =
  let t =
    mk [ Uncertain.interval 0.0 10.0; Uncertain.interval 0.0 4.0 ] [ 5.0; 2.0 ]
  in
  Alcotest.(check (float 0.0)) "max over mentioned" 10.0
    (Relation.laxity cond_hot_low t);
  let only_battery = Relation.atom s2 "battery" (Predicate.le 20.0) in
  Alcotest.(check (float 0.0)) "unmentioned ignored" 4.0
    (Relation.laxity only_battery t)

let test_probe_planning_prefers_decisive () =
  (* battery is certainly low; temp decides the conjunction.  The plan
     must fetch temp, not battery. *)
  let t =
    mk [ Uncertain.interval 25.0 35.0; Uncertain.interval 10.0 15.0 ] [ 33.0; 12.0 ]
  in
  Alcotest.(check (option int)) "probes temp" (Some 0)
    (Relation.next_probe cond_hot_low t);
  (* Conversely when temp is settled. *)
  let t =
    mk [ Uncertain.interval 35.0 40.0; Uncertain.interval 15.0 30.0 ] [ 37.0; 22.0 ]
  in
  Alcotest.(check (option int)) "probes battery" (Some 1)
    (Relation.next_probe cond_hot_low t);
  (* Nothing to probe when definite. *)
  let t = mk [ Uncertain.exact 40.0; Uncertain.exact 10.0 ] [ 40.0; 10.0 ] in
  Alcotest.(check (option int)) "definite" None
    (Relation.next_probe cond_hot_low t)

let test_resolve_stops_early_on_no () =
  (* A conjunction that dies on the first fetch: both attributes are
     MAYBE, but the first fetched (temp, truth 27 < 30) settles NO, so
     battery is never fetched. *)
  let t =
    mk [ Uncertain.interval 25.0 35.0; Uncertain.interval 0.0 40.0 ] [ 27.0; 30.0 ]
  in
  let meter = Cost_meter.create () in
  let resolved = Relation.resolve ~meter cond_hot_low t in
  Alcotest.check tvl "resolved no" Tvl.No (Relation.classify cond_hot_low resolved);
  checki "single fetch" 1 (Cost_meter.counts meter).probes;
  (* A YES resolution fetches everything mentioned (emittable objects
     must reach laxity 0). *)
  let t =
    mk [ Uncertain.interval 28.0 42.0; Uncertain.interval 0.0 40.0 ] [ 40.0; 10.0 ]
  in
  let meter = Cost_meter.create () in
  let resolved = Relation.resolve ~meter cond_hot_low t in
  Alcotest.check tvl "resolved yes" Tvl.Yes (Relation.classify cond_hot_low resolved);
  checki "both fetched" 2 (Cost_meter.counts meter).probes;
  Alcotest.(check (float 0.0)) "laxity zero" 0.0
    (Relation.laxity cond_hot_low resolved)

let random_tuples seed n =
  let rng = Rng.create seed in
  Array.init n (fun id ->
      let attr_belief () =
        let truth = Rng.float rng 100.0 in
        let w = Rng.float rng 30.0 in
        let off = Rng.float rng w in
        (Uncertain.interval (truth -. off) (truth -. off +. w), truth)
      in
      let b0, t0 = attr_belief () and b1, t1 = attr_belief () in
      Relation.tuple ~id ~beliefs:[| b0; b1 |] ~truths:[| t0; t1 |])

let test_select_end_to_end () =
  let tuples = random_tuples 9 3000 in
  let requirements = Quality.requirements ~precision:0.9 ~recall:0.7 ~laxity:25.0 in
  let report =
    Relation.select ~rng:(Rng.create 10) ~requirements cond_hot_low tuples
  in
  checkb "meets" true (Quality.meets report.guarantees requirements);
  let answer_in_exact =
    List.length
      (List.filter
         (fun e -> Relation.eval_truth cond_hot_low e.Operator.obj)
         report.answer)
  in
  let exact =
    Array.to_list tuples
    |> List.filter (Relation.eval_truth cond_hot_low)
    |> List.length
  in
  let actual_p =
    Quality.Diagnostics.precision ~answer_size:report.answer_size
      ~answer_in_exact
  in
  let actual_r =
    Quality.Diagnostics.recall ~exact_size:exact ~answer_in_exact
  in
  checkb "actual precision dominates" true
    (actual_p >= report.guarantees.precision -. 1e-9);
  checkb "actual recall dominates" true
    (actual_r >= report.guarantees.recall -. 1e-9);
  (* Attribute-level accounting: fetches can exceed probe actions (two
     attributes) but never exceed 2x. *)
  checkb "fetch accounting sane" true
    (report.counts.probes >= report.probe_actions
    && report.counts.probes <= 2 * report.probe_actions)

(* Fuzz: classification and success are sound against ground truth for
   random conditions over random tuples. *)
let cond_gen =
  QCheck2.Gen.(
    let atom_gen =
      let* i = int_range 0 1 in
      let* thr = float_range 10.0 90.0 in
      let* dir = bool in
      return (Relation.Atom (i, if dir then Predicate.ge thr else Predicate.le thr))
    in
    sized @@ fix (fun self n ->
        if n <= 1 then atom_gen
        else
          oneof
            [
              atom_gen;
              map2 (fun a b -> Relation.And (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Relation.Or (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Relation.Not a) (self (n - 1));
            ]))

let prop_classification_sound =
  QCheck2.Test.make ~name:"relation classification sound vs ground truth"
    ~count:300
    QCheck2.Gen.(pair cond_gen (int_range 0 5000))
    (fun (cond, seed) ->
      let tuples = random_tuples seed 30 in
      Array.for_all
        (fun t ->
          let truth = Relation.eval_truth cond t in
          let ok_verdict =
            match Relation.classify cond t with
            | Tvl.Yes -> truth
            | Tvl.No -> not truth
            | Tvl.Maybe -> true
          in
          let s = Relation.success cond t in
          ok_verdict && s >= 0.0 && s <= 1.0)
        tuples)

let prop_resolve_definite =
  QCheck2.Test.make ~name:"resolve always reaches a definite verdict"
    ~count:200
    QCheck2.Gen.(pair cond_gen (int_range 0 5000))
    (fun (cond, seed) ->
      let tuples = random_tuples seed 10 in
      Array.for_all
        (fun t ->
          let resolved = Relation.resolve cond t in
          let verdict = Relation.classify cond resolved in
          Tvl.is_definite verdict
          && (not (Tvl.equal verdict Tvl.Yes)
             || Relation.laxity cond resolved = 0.0))
        tuples)

let suite =
  [
    ("schema", `Quick, test_schema);
    ("tuple validation", `Quick, test_tuple_validation);
    ("kleene classification", `Quick, test_classify_kleene);
    ("normalisation recovers per-attribute tautologies", `Quick, test_normalisation_recovers_tautology);
    ("success under independence", `Quick, test_success_independent_product);
    ("laxity over mentioned attributes", `Quick, test_laxity_over_mentioned);
    ("probe planning prefers the decisive attribute", `Quick, test_probe_planning_prefers_decisive);
    ("resolve stops early on NO", `Quick, test_resolve_stops_early_on_no);
    ("select end to end", `Quick, test_select_end_to_end);
    QCheck_alcotest.to_alcotest prop_classification_sound;
    QCheck_alcotest.to_alcotest prop_resolve_definite;
  ]
