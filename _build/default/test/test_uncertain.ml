(* Tests for the scalar imprecision models. *)

let tvl = Alcotest.testable Tvl.pp Tvl.equal
let checkf tol = Alcotest.(check (float tol))

let test_laxity () =
  checkf 0.0 "exact" 0.0 (Uncertain.laxity (Uncertain.exact 5.0));
  checkf 0.0 "interval" 4.0 (Uncertain.laxity (Uncertain.interval 1.0 5.0));
  checkf 0.0 "gaussian = stddev" 2.0
    (Uncertain.laxity (Uncertain.gaussian ~mean:0.0 ~stddev:2.0 ()))

let test_support () =
  let g = Uncertain.gaussian ~cut:3.0 ~mean:10.0 ~stddev:2.0 () in
  let s = Uncertain.support g in
  checkf 1e-12 "gaussian support lo" 4.0 (Interval.lo s);
  checkf 1e-12 "gaussian support hi" 16.0 (Interval.hi s);
  let e = Uncertain.support (Uncertain.exact 3.0) in
  Alcotest.(check bool) "exact support is a point" true (Interval.is_point e)

let test_constructor_errors () =
  Alcotest.check_raises "bad stddev"
    (Invalid_argument "Uncertain.gaussian: stddev <= 0") (fun () ->
      ignore (Uncertain.gaussian ~mean:0.0 ~stddev:0.0 ()));
  Alcotest.check_raises "bad cut"
    (Invalid_argument "Uncertain.gaussian: cut <= 0") (fun () ->
      ignore (Uncertain.gaussian ~cut:(-1.0) ~mean:0.0 ~stddev:1.0 ()));
  Alcotest.check_raises "non-finite exact"
    (Invalid_argument "Uncertain.exact: not finite") (fun () ->
      ignore (Uncertain.exact Float.infinity))

let test_classification () =
  let i = Uncertain.interval 1.0 3.0 in
  Alcotest.check tvl "interval maybe" Tvl.Maybe (Uncertain.classify_ge i 2.0);
  let e = Uncertain.exact 5.0 in
  Alcotest.check tvl "exact yes" Tvl.Yes (Uncertain.classify_ge e 4.0);
  Alcotest.check tvl "exact no" Tvl.No (Uncertain.classify_ge e 6.0);
  let g = Uncertain.gaussian ~cut:4.0 ~mean:0.0 ~stddev:1.0 () in
  Alcotest.check tvl "gaussian far below threshold" Tvl.No
    (Uncertain.classify_ge g 5.0);
  Alcotest.check tvl "gaussian far above threshold" Tvl.Yes
    (Uncertain.classify_ge g (-5.0));
  Alcotest.check tvl "gaussian near mean" Tvl.Maybe (Uncertain.classify_ge g 0.0)

let test_success_gaussian () =
  let g = Uncertain.gaussian ~mean:0.0 ~stddev:1.0 () in
  checkf 1e-7 "ge mean = 0.5" 0.5 (Uncertain.success_ge g 0.0);
  checkf 2e-7 "ge one sigma" (1.0 -. 0.8413447) (Uncertain.success_ge g 1.0);
  checkf 1e-7 "le mean" 0.5 (Uncertain.success_le g 0.0);
  checkf 1e-6 "between symmetric" 0.6826895 (Uncertain.success_between g (-1.0) 1.0);
  checkf 0.0 "between reversed" 0.0 (Uncertain.success_between g 1.0 (-1.0))

let test_success_interval_uniform () =
  let i = Uncertain.interval 0.0 10.0 in
  checkf 1e-12 "ge 7.5" 0.25 (Uncertain.success_ge i 7.5);
  checkf 1e-12 "le 2.5" 0.25 (Uncertain.success_le i 2.5);
  checkf 1e-12 "between" 0.5 (Uncertain.success_between i 2.5 7.5)

let uncertain_gen =
  QCheck2.Gen.(
    oneof
      [
        map Uncertain.exact (float_range (-50.0) 50.0);
        (let* lo = float_range (-50.0) 50.0 in
         let* w = float_range 0.001 30.0 in
         return (Uncertain.interval lo (lo +. w)));
        (let* mean = float_range (-50.0) 50.0 in
         let* stddev = float_range 0.01 10.0 in
         return (Uncertain.gaussian ~mean ~stddev ()));
      ])

let prop_sample_in_support =
  QCheck2.Test.make ~name:"samples stay in support" ~count:300 uncertain_gen
    (fun u ->
      let rng = Rng.create 17 in
      let ok = ref true in
      for _ = 1 to 20 do
        if not (Interval.contains (Uncertain.support u) (Uncertain.sample rng u))
        then ok := false
      done;
      !ok)

let prop_classification_consistent_with_support =
  QCheck2.Test.make ~name:"classification agrees with support interval"
    ~count:300
    QCheck2.Gen.(pair uncertain_gen (float_range (-80.0) 80.0))
    (fun (u, x) ->
      Tvl.equal (Uncertain.classify_ge u x)
        (Interval.classify_ge (Uncertain.support u) x))

let prop_success_bounds =
  QCheck2.Test.make ~name:"success in [0,1] for every model" ~count:300
    QCheck2.Gen.(pair uncertain_gen (float_range (-80.0) 80.0))
    (fun (u, x) ->
      let ok p = p >= 0.0 && p <= 1.0 in
      ok (Uncertain.success_ge u x)
      && ok (Uncertain.success_le u x)
      && ok (Uncertain.success_between u x (x +. 5.0)))

let suite =
  [
    ("laxity per model", `Quick, test_laxity);
    ("support", `Quick, test_support);
    ("constructor errors", `Quick, test_constructor_errors);
    ("classification", `Quick, test_classification);
    ("gaussian success", `Quick, test_success_gaussian);
    ("interval success", `Quick, test_success_interval_uniform);
    QCheck_alcotest.to_alcotest prop_sample_in_support;
    QCheck_alcotest.to_alcotest prop_classification_consistent_with_support;
    QCheck_alcotest.to_alcotest prop_success_bounds;
  ]
