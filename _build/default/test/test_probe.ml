(* Tests for probe sources and the sensor-network simulator. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_probe_source_basic () =
  let source = Probe_source.create (fun x -> x * 2) in
  checki "resolves" 10 (Probe_source.probe source 5);
  checki "again" 14 (Probe_source.probe source 7);
  let s = Probe_source.stats source in
  checki "probes" 2 s.probes;
  checki "attempts" 2 s.attempts;
  Alcotest.(check (float 0.0)) "no latency" 0.0 s.simulated_latency

let test_probe_source_latency () =
  let source = Probe_source.create ~latency:(Probe_source.Constant 3.0) Fun.id in
  ignore (Probe_source.probe source 1);
  ignore (Probe_source.probe source 2);
  Alcotest.(check (float 1e-9)) "latency accumulates" 6.0
    (Probe_source.stats source).simulated_latency;
  Probe_source.reset_stats source;
  checki "reset" 0 (Probe_source.stats source).probes

let test_probe_source_failures () =
  let rng = Rng.create 5 in
  let source =
    Probe_source.create ~failure_rate:0.5 ~max_retries:50 ~rng Fun.id
  in
  for i = 1 to 100 do
    checki "eventually succeeds" i (Probe_source.probe source i)
  done;
  let s = Probe_source.stats source in
  checki "100 probes" 100 s.probes;
  checkb "more attempts than probes" true (s.attempts > 100);
  (* Expected attempts/probe at p=0.5 is 2; allow wide slack. *)
  checkb "attempt ratio sane" true
    (s.attempts < 400)

let test_probe_source_exhausts_retries () =
  (* failure_rate just below 1 with zero retries fails almost surely on
     some attempt within a few tries. *)
  let rng = Rng.create 6 in
  let source =
    Probe_source.create ~failure_rate:0.99 ~max_retries:0 ~rng Fun.id
  in
  let failed = ref false in
  (try
     for i = 1 to 20 do
       ignore (Probe_source.probe source i)
     done
   with Probe_source.Probe_failed -> failed := true);
  checkb "a probe failed" true !failed

let test_probe_source_validation () =
  Alcotest.check_raises "rng required"
    (Invalid_argument "Probe_source.create: rng required for jitter or failures")
    (fun () -> ignore (Probe_source.create ~failure_rate:0.1 Fun.id));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Probe_source.create: failure_rate outside [0, 1)")
    (fun () -> ignore (Probe_source.create ~failure_rate:1.0 Fun.id))

let make_net ?(n = 200) ?(drift = 1.0) seed =
  Sensor_net.create (Rng.create seed) ~n
    ~value_range:(Interval.make 0.0 100.0)
    ~tolerance_range:(Interval.make 1.0 5.0)
    ~drift_stddev:drift

let test_sensor_net_replicas_sound () =
  let net = make_net 10 in
  for _ = 1 to 100 do
    Sensor_net.step net
  done;
  (* The invariant of the approximate-replication protocol: the truth is
     always inside the cached interval. *)
  Array.iter
    (fun (r : Sensor_net.reading) ->
      checkb "truth inside replica" true (Interval.contains r.cached r.current))
    (Sensor_net.snapshot net)

let test_sensor_net_transmissions () =
  let quiet = make_net ~drift:0.01 11 in
  let noisy = make_net ~drift:5.0 11 in
  for _ = 1 to 50 do
    Sensor_net.step quiet;
    Sensor_net.step noisy
  done;
  checkb "noisy drifts transmit more" true
    (Sensor_net.transmissions noisy > Sensor_net.transmissions quiet);
  checki "quiet barely transmits" 0 (Sensor_net.transmissions quiet)

let test_sensor_net_instance () =
  let net = make_net 12 in
  for _ = 1 to 20 do
    Sensor_net.step net
  done;
  let pred = Predicate.ge 50.0 in
  let instance = Sensor_net.instance pred in
  Array.iter
    (fun (r : Sensor_net.reading) ->
      (* YES/NO classifications must agree with ground truth. *)
      (match instance.classify r with
      | Tvl.Yes -> checkb "yes is true" true (Sensor_net.in_exact pred r)
      | Tvl.No -> checkb "no is false" false (Sensor_net.in_exact pred r)
      | Tvl.Maybe -> ());
      (* Probing yields a definite, zero-laxity reading. *)
      let probed = Sensor_net.probe r in
      checkb "probe definite" true (Tvl.is_definite (instance.classify probed));
      Alcotest.(check (float 0.0)) "probe laxity" 0.0 (instance.laxity probed))
    (Sensor_net.snapshot net)

let suite =
  [
    ("probe source basics", `Quick, test_probe_source_basic);
    ("probe source latency", `Quick, test_probe_source_latency);
    ("probe source failures and retries", `Quick, test_probe_source_failures);
    ("probe source retry exhaustion", `Quick, test_probe_source_exhausts_retries);
    ("probe source validation", `Quick, test_probe_source_validation);
    ("sensor replicas are sound", `Quick, test_sensor_net_replicas_sound);
    ("sensor transmissions scale with drift", `Quick, test_sensor_net_transmissions);
    ("sensor reading instance", `Quick, test_sensor_net_instance);
  ]
