(* Tests for the report table renderer. *)

let checks = Alcotest.(check string)

let test_float_cells () =
  checks "integer" "12" (Text_table.cell_of_float 12.0);
  checks "negative integer" "-3" (Text_table.cell_of_float (-3.0));
  checks "trims zeros" "1.5" (Text_table.cell_of_float 1.5);
  checks "three decimals" "0.333" (Text_table.cell_of_float (1.0 /. 3.0));
  checks "trailing dot removed" "2" (Text_table.cell_of_float 2.0004)

let test_arity_checked () =
  let t = Text_table.create ~title:"t" ~header:[ "a"; "b" ] in
  Alcotest.check_raises "short row"
    (Invalid_argument "Text_table.add_row: arity mismatch with header")
    (fun () -> Text_table.add_row t [ "only one" ])

let test_render_shape () =
  let t = Text_table.create ~title:"demo" ~header:[ "name"; "value" ] in
  Text_table.add_row t [ "alpha"; "1" ];
  Text_table.add_float_row t "beta" [ 2.5 ];
  let rendered = Text_table.render t in
  let lines = String.split_on_char '\n' rendered in
  checks "title first" "demo" (List.nth lines 0);
  (* All body lines share one width. *)
  let widths =
    List.filter (fun l -> String.length l > 0) (List.tl lines)
    |> List.map String.length
  in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check bool) "contains row" true
    (String.length rendered > 0
    &&
    let contains needle haystack =
      let n = String.length needle and h = String.length haystack in
      let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
      go 0
    in
    contains "alpha" rendered && contains "2.5" rendered)

let test_row_order_preserved () =
  let t = Text_table.create ~title:"o" ~header:[ "x" ] in
  List.iter (fun r -> Text_table.add_row t [ r ]) [ "first"; "second"; "third" ];
  let rendered = Text_table.render t in
  let pos needle =
    let n = String.length needle in
    let rec go i =
      if i + n > String.length rendered then -1
      else if String.sub rendered i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "order" true
    (pos "first" < pos "second" && pos "second" < pos "third")

let suite =
  [
    ("float cells", `Quick, test_float_cells);
    ("arity checked", `Quick, test_arity_checked);
    ("render shape", `Quick, test_render_shape);
    ("row order preserved", `Quick, test_row_order_preserved);
  ]
