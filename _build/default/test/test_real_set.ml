(* Property tests for finite unions of closed intervals.

   The key invariant: set algebra on Real_set must agree pointwise with
   boolean algebra on membership, for points away from component
   boundaries (closed-endpoint approximation documented in the mli). *)

let checkf = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let test_basics () =
  checkb "mem segment" true (Real_set.mem (Real_set.segment 1.0 3.0) 2.0);
  checkb "mem outside" false (Real_set.mem (Real_set.segment 1.0 3.0) 4.0);
  checkb "empty has nothing" false (Real_set.mem Real_set.empty 0.0);
  checkb "full has everything" true (Real_set.mem Real_set.full 1e300);
  checkb "at_least" true (Real_set.mem (Real_set.at_least 5.0) 5.0);
  checkb "at_most" false (Real_set.mem (Real_set.at_most 5.0) 5.1)

let test_union_merges () =
  let s = Real_set.union (Real_set.segment 0.0 2.0) (Real_set.segment 1.0 3.0) in
  Alcotest.(check int) "merged to one component" 1
    (List.length (Real_set.components s));
  let s2 = Real_set.union (Real_set.segment 0.0 1.0) (Real_set.segment 2.0 3.0) in
  Alcotest.(check int) "disjoint stays two" 2
    (List.length (Real_set.components s2))

let test_complement () =
  let s = Real_set.complement (Real_set.segment 1.0 3.0) in
  checkb "left of hole" true (Real_set.mem s 0.0);
  checkb "inside hole" false (Real_set.mem s 2.0);
  checkb "right of hole" true (Real_set.mem s 4.0);
  checkb "complement of full is empty" true
    (Real_set.equal (Real_set.complement Real_set.full) Real_set.empty);
  checkb "complement of empty is full" true
    (Real_set.equal (Real_set.complement Real_set.empty) Real_set.full)

let test_covers_disjoint () =
  let s = Real_set.union (Real_set.segment 0.0 2.0) (Real_set.segment 5.0 8.0) in
  checkb "covers inner" true (Real_set.covers s (Interval.make 5.5 7.0));
  checkb "does not cover straddling" false (Real_set.covers s (Interval.make 1.0 6.0));
  checkb "disjoint from gap" true (Real_set.disjoint s (Interval.make 3.0 4.0));
  checkb "not disjoint" false (Real_set.disjoint s (Interval.make 1.0 6.0))

let test_measure () =
  let s = Real_set.union (Real_set.segment 0.0 2.0) (Real_set.segment 5.0 8.0) in
  checkf "full window" 5.0 (Real_set.measure_within s (Interval.make (-10.0) 10.0));
  checkf "partial window" 2.0 (Real_set.measure_within s (Interval.make 1.0 6.0));
  checkf "gap window" 0.0 (Real_set.measure_within s (Interval.make 3.0 4.0))

(* Random set expressions, evaluated both as Real_set and as a boolean
   membership function. *)

type expr =
  | Seg of float * float
  | AtLeast of float
  | Union of expr * expr
  | Inter of expr * expr
  | Compl of expr

let rec to_set = function
  | Seg (a, b) -> Real_set.segment a b
  | AtLeast a -> Real_set.at_least a
  | Union (a, b) -> Real_set.union (to_set a) (to_set b)
  | Inter (a, b) -> Real_set.inter (to_set a) (to_set b)
  | Compl a -> Real_set.complement (to_set a)

let rec holds e x =
  match e with
  | Seg (a, b) -> a <= x && x <= b
  | AtLeast a -> x >= a
  | Union (a, b) -> holds a x || holds b x
  | Inter (a, b) -> holds a x && holds b x
  | Compl a -> not (holds a x)

let expr_gen =
  (* Integer-valued endpoints so that test points at k + 0.5 never hit a
     boundary, where open/closed distinctions would bite. *)
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              (let* a = int_range (-20) 20 in
               let* w = int_range 0 15 in
               return (Seg (float_of_int a, float_of_int (a + w))));
              map (fun a -> AtLeast (float_of_int a)) (int_range (-20) 20);
            ]
        in
        if n <= 1 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun a b -> Union (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Inter (a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Compl a) (self (n - 1));
            ]))

let prop_membership_agrees =
  QCheck2.Test.make ~name:"set algebra agrees with boolean membership"
    ~count:500
    QCheck2.Gen.(pair expr_gen (int_range (-30) 30))
    (fun (e, k) ->
      let x = float_of_int k +. 0.5 in
      Real_set.mem (to_set e) x = holds e x)

let prop_components_sorted_disjoint =
  QCheck2.Test.make ~name:"components are sorted with positive gaps"
    ~count:500 expr_gen (fun e ->
      let rec ok = function
        | [] | [ _ ] -> true
        | (_, h1) :: ((l2, _) as c2) :: rest -> h1 < l2 && ok (c2 :: rest)
      in
      let comps = Real_set.components (to_set e) in
      List.for_all (fun (l, h) -> l <= h) comps && ok comps)

(* Double complement preserves membership away from boundaries.  It is
   NOT the identity on representations: a degenerate point component
   [a, a] is swallowed when its closed complement halves merge — the
   documented measure-zero approximation. *)
let prop_double_complement =
  QCheck2.Test.make ~name:"double complement preserves interior membership"
    ~count:300
    QCheck2.Gen.(pair expr_gen (int_range (-30) 30))
    (fun (e, k) ->
      let x = float_of_int k +. 0.5 in
      let s = to_set e in
      Real_set.mem s x
      = Real_set.mem (Real_set.complement (Real_set.complement s)) x)

let suite =
  [
    ("membership basics", `Quick, test_basics);
    ("union merges overlaps", `Quick, test_union_merges);
    ("complement", `Quick, test_complement);
    ("covers / disjoint", `Quick, test_covers_disjoint);
    ("measure within window", `Quick, test_measure);
    QCheck_alcotest.to_alcotest prop_membership_agrees;
    QCheck_alcotest.to_alcotest prop_components_sorted_disjoint;
    QCheck_alcotest.to_alcotest prop_double_complement;
  ]
