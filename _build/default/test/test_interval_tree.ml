(* Tests for the centered interval tree. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let iv lo hi = Interval.make lo hi

let sample_tree () =
  Interval_tree.build
    [| (iv 0.0 3.0, "a"); (iv 2.0 5.0, "b"); (iv 4.0 9.0, "c");
       (iv 8.0 10.0, "d"); (iv 1.0 1.0, "point") |]

let sorted_payloads entries = List.sort compare (List.map snd entries)

let test_stab () =
  let t = sample_tree () in
  Alcotest.(check (list string)) "stab 2.5" [ "a"; "b" ]
    (sorted_payloads (Interval_tree.stab t 2.5));
  Alcotest.(check (list string)) "stab 1" [ "a"; "point" ]
    (sorted_payloads (Interval_tree.stab t 1.0));
  Alcotest.(check (list string)) "stab 8.5" [ "c"; "d" ]
    (sorted_payloads (Interval_tree.stab t 8.5));
  Alcotest.(check (list string)) "stab outside" []
    (sorted_payloads (Interval_tree.stab t 20.0));
  checki "count agrees" 2 (Interval_tree.count_stab t 2.5)

let test_overlapping () =
  let t = sample_tree () in
  Alcotest.(check (list string)) "window [3.5, 8]" [ "b"; "c"; "d" ]
    (sorted_payloads (Interval_tree.overlapping t (iv 3.5 8.0)));
  Alcotest.(check (list string)) "everything" [ "a"; "b"; "c"; "d"; "point" ]
    (sorted_payloads (Interval_tree.overlapping t (iv (-5.0) 50.0)));
  Alcotest.(check (list string)) "inside c only" [ "c" ]
    (sorted_payloads (Interval_tree.overlapping t (iv 6.5 7.5)));
  Alcotest.(check (list string)) "beyond everything" []
    (sorted_payloads (Interval_tree.overlapping t (iv 10.5 11.0)))

let test_empty_and_metrics () =
  let empty = Interval_tree.build [||] in
  checki "empty size" 0 (Interval_tree.size empty);
  checki "empty height" 0 (Interval_tree.height empty);
  Alcotest.(check (list string)) "empty stab" []
    (sorted_payloads (Interval_tree.stab empty 1.0));
  let t = sample_tree () in
  checki "size" 5 (Interval_tree.size t);
  checkb "height positive" true (Interval_tree.height t >= 1)

let test_height_balanced () =
  (* n well-spread intervals: height should stay logarithmic, far below
     a degenerate chain. *)
  let rng = Rng.create 13 in
  let pairs =
    Array.init 4096 (fun i ->
        let lo = Rng.uniform_in rng 0.0 10000.0 in
        (Interval.make lo (lo +. Rng.float rng 50.0), i))
  in
  let t = Interval_tree.build pairs in
  checkb "logarithmic height" true (Interval_tree.height t <= 40)

let entry_gen =
  QCheck2.Gen.(
    let* lo = float_range (-100.0) 100.0 in
    let* w = float_range 0.0 40.0 in
    return (Interval.make lo (lo +. w)))

let prop_stab_matches_bruteforce =
  QCheck2.Test.make ~name:"stab matches brute force" ~count:200
    QCheck2.Gen.(
      pair (list_size (int_range 0 120) entry_gen) (float_range (-120.0) 120.0))
    (fun (intervals, x) ->
      let pairs = Array.of_list (List.mapi (fun i iv -> (iv, i)) intervals) in
      let t = Interval_tree.build pairs in
      let got = List.sort compare (List.map snd (Interval_tree.stab t x)) in
      let expected =
        List.sort compare
          (List.filteri (fun _ _ -> true) intervals
          |> List.mapi (fun i iv -> (i, iv))
          |> List.filter (fun (_, iv) -> Interval.contains iv x)
          |> List.map fst)
      in
      got = expected)

let prop_overlap_matches_bruteforce =
  QCheck2.Test.make ~name:"overlap matches brute force" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 120) entry_gen) entry_gen)
    (fun (intervals, q) ->
      let pairs = Array.of_list (List.mapi (fun i iv -> (iv, i)) intervals) in
      let t = Interval_tree.build pairs in
      let got =
        List.sort compare (List.map snd (Interval_tree.overlapping t q))
      in
      let expected =
        List.mapi (fun i iv -> (i, iv)) intervals
        |> List.filter (fun (_, iv) -> Interval.intersects iv q)
        |> List.map fst |> List.sort compare
      in
      got = expected)

(* The tree and the sorted-array index must agree on predicate
   candidates, including multi-component satisfying sets. *)
let prop_candidates_match_index =
  QCheck2.Test.make ~name:"tree candidates = interval-index candidates"
    ~count:150
    QCheck2.Gen.(
      pair (list_size (int_range 0 100) entry_gen)
        (pair (float_range (-80.0) 80.0) (float_range (-80.0) 80.0)))
    (fun (intervals, (t1, t2)) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      (* A predicate with a hole: value <= lo OR value >= hi. *)
      let pred = Predicate.(le lo ||| ge hi) in
      let pairs = Array.of_list (List.mapi (fun i iv -> (iv, i)) intervals) in
      let tree = Interval_tree.build pairs in
      let index =
        Interval_index.build
          (Array.of_list (List.mapi (fun i iv -> (iv, i)) intervals))
          ~support:fst
      in
      let got = List.sort compare (Interval_tree.candidates tree pred) in
      let expected =
        Interval_index.candidates index pred
        |> Array.to_list |> List.map snd |> List.sort compare
      in
      got = expected)

let suite =
  [
    ("stabbing queries", `Quick, test_stab);
    ("overlap queries", `Quick, test_overlapping);
    ("empty tree and metrics", `Quick, test_empty_and_metrics);
    ("height stays logarithmic", `Quick, test_height_balanced);
    QCheck_alcotest.to_alcotest prop_stab_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_overlap_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_candidates_match_index;
  ]
