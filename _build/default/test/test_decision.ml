(* Tests for the Theorem 3.1 feasibility rules. *)

let req ?(p = 0.9) ?(r = 0.5) ?(l = 50.0) () =
  Quality.requirements ~precision:p ~recall:r ~laxity:l

let action = Alcotest.testable Decision.pp_action Decision.equal_action
let checkb = Alcotest.(check bool)

let test_rule_a_laxity () =
  let c = Counters.create ~total:100 in
  let r = req ~l:10.0 () in
  checkb "YES below bound forwardable" true
    (Decision.can_forward c r ~verdict:Tvl.Yes ~laxity:10.0);
  checkb "YES above bound not forwardable" false
    (Decision.can_forward c r ~verdict:Tvl.Yes ~laxity:10.01);
  checkb "MAYBE above bound not forwardable" false
    (Decision.can_forward c r ~verdict:Tvl.Maybe ~laxity:11.0)

let test_rule_b_precision () =
  (* One YES in an answer of one: forwarding a MAYBE gives p^G = 1/2. *)
  let c = Counters.create ~total:100 in
  Counters.forward_yes c ~laxity:1.0;
  checkb "MAYBE blocked at p_q = 0.9" false
    (Decision.can_forward c (req ~p:0.9 ()) ~verdict:Tvl.Maybe ~laxity:1.0);
  checkb "MAYBE allowed at p_q = 0.5" true
    (Decision.can_forward c (req ~p:0.5 ()) ~verdict:Tvl.Maybe ~laxity:1.0);
  (* YES forwarding is never precision-blocked. *)
  checkb "YES never precision-blocked" true
    (Decision.can_forward c (req ~p:1.0 ()) ~verdict:Tvl.Yes ~laxity:1.0)

let test_rule_b_paper_example () =
  (* §3.2's last scenario: |Y| = |A∩Y| = 1, p_q = 1.  A MAYBE cannot be
     forwarded (precision), and with r_q = 0.02 ignoring is allowed. *)
  let c = Counters.create ~total:100 in
  Counters.forward_yes c ~laxity:0.5;
  let r = req ~p:1.0 ~r:0.02 ~l:1.0 () in
  checkb "cannot forward MAYBE" false
    (Decision.can_forward c r ~verdict:Tvl.Maybe ~laxity:0.5);
  checkb "can ignore (recall slack: 1/2 >= 0.02)" true
    (Decision.can_ignore c r ~verdict:Tvl.Maybe)

let test_rule_c_recall () =
  let c = Counters.create ~total:100 in
  (* Nothing answered yet: ignoring drops worst-case recall to 0/1. *)
  checkb "cannot ignore with r_q > 0" false
    (Decision.can_ignore c (req ~r:0.5 ()) ~verdict:Tvl.Yes);
  checkb "can ignore with r_q = 0" true
    (Decision.can_ignore c (req ~r:0.0 ()) ~verdict:Tvl.Yes);
  (* After answering two YES, one ignore keeps worst case at 2/3. *)
  Counters.forward_yes c ~laxity:1.0;
  Counters.forward_yes c ~laxity:1.0;
  checkb "ignore ok at 2/3 >= 0.5" true
    (Decision.can_ignore c (req ~r:0.5 ()) ~verdict:Tvl.Maybe);
  checkb "ignore blocked at 0.7 > 2/3" false
    (Decision.can_ignore c (req ~r:0.7 ()) ~verdict:Tvl.Maybe);
  (* NO objects are always 'ignorable' (they are simply discarded). *)
  checkb "NO discard always fine" true
    (Decision.can_ignore c (req ~r:1.0 ()) ~verdict:Tvl.No)

let test_feasible_always_contains_probe () =
  let c = Counters.create ~total:10 in
  let r = req ~p:1.0 ~r:1.0 ~l:0.0 () in
  (* Strictest possible requirements: forwarding and ignoring both die. *)
  let feasible = Decision.feasible c r ~verdict:Tvl.Maybe ~laxity:5.0 in
  Alcotest.(check (list action)) "probe only" [ Decision.Probe ] feasible

let test_first_feasible_fallback () =
  let c = Counters.create ~total:10 in
  let r = req ~p:1.0 ~r:1.0 ~l:0.0 () in
  Alcotest.check action "falls through to probe" Decision.Probe
    (Decision.first_feasible c r ~verdict:Tvl.Maybe ~laxity:5.0
       ~preference:[ Decision.Forward; Decision.Ignore; Decision.Probe ]);
  Alcotest.check action "empty preference still probes" Decision.Probe
    (Decision.first_feasible c r ~verdict:Tvl.Maybe ~laxity:5.0 ~preference:[]);
  (* When forward is legal it is taken first. *)
  let relaxed = req ~p:0.0 ~r:0.0 ~l:10.0 () in
  Alcotest.check action "prefers forward" Decision.Forward
    (Decision.first_feasible c relaxed ~verdict:Tvl.Maybe ~laxity:5.0
       ~preference:[ Decision.Forward; Decision.Probe ])

let test_no_never_forwarded () =
  let c = Counters.create ~total:10 in
  Alcotest.check_raises "NO forward is a programming error"
    (Invalid_argument "Decision.can_forward: NO objects are never forwarded")
    (fun () ->
      ignore (Decision.can_forward c (req ()) ~verdict:Tvl.No ~laxity:1.0))

(* Safety property behind Theorem 3.1(c): if every ignore is vetted by
   can_ignore, then however the remaining input turns out, final recall
   (with everything else forwarded) meets r_q. *)
let prop_vetted_ignores_preserve_recall =
  QCheck2.Test.make ~name:"vetted ignores keep worst-case recall above r_q"
    ~count:300
    QCheck2.Gen.(
      pair (float_range 0.0 1.0) (list_size (int_range 1 60) (int_range 0 2)))
    (fun (r_q, events) ->
      let r = req ~r:r_q () in
      let c = Counters.create ~total:100 in
      let n = ref 0 in
      List.iter
        (fun e ->
          if !n < 100 then begin
            incr n;
            match e with
            | 0 -> Counters.forward_yes c ~laxity:1.0
            | 1 ->
                if Decision.can_ignore c r ~verdict:Tvl.Yes then
                  Counters.ignore_yes c
                else Counters.forward_yes c ~laxity:1.0
            | _ ->
                if Decision.can_ignore c r ~verdict:Tvl.Maybe then
                  Counters.ignore_maybe c
                else Counters.probe_maybe_yes c
          end)
        events;
      Counters.worst_case_final_recall c >= r_q -. 1e-12)

let suite =
  [
    ("rule (a): laxity", `Quick, test_rule_a_laxity);
    ("rule (b): precision", `Quick, test_rule_b_precision);
    ("rule (b): paper scenario", `Quick, test_rule_b_paper_example);
    ("rule (c): recall", `Quick, test_rule_c_recall);
    ("probe always feasible", `Quick, test_feasible_always_contains_probe);
    ("first_feasible fallback", `Quick, test_first_feasible_fallback);
    ("NO is never forwarded", `Quick, test_no_never_forwarded);
    QCheck_alcotest.to_alcotest prop_vetted_ignores_preserve_recall;
  ]
