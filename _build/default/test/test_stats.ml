(* Tests for descriptive statistics and Welford accumulation. *)

let checkf = Alcotest.(check (float 1e-9))

let test_mean () =
  checkf "simple" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "empty" 0.0 (Stats.mean [||]);
  checkf "single" 7.0 (Stats.mean [| 7.0 |])

let test_variance () =
  (* Sample variance of 2,4,4,4,5,5,7,9 is 32/7. *)
  checkf "known value" (32.0 /. 7.0)
    (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]);
  checkf "fewer than two" 0.0 (Stats.variance [| 3.0 |]);
  checkf "constant data" 0.0 (Stats.variance [| 5.0; 5.0; 5.0 |])

let test_minmax () =
  checkf "min" (-2.0) (Stats.min [| 3.0; -2.0; 7.0 |]);
  checkf "max" 7.0 (Stats.max [| 3.0; -2.0; 7.0 |]);
  Alcotest.(check bool) "min empty nan" true (Float.is_nan (Stats.min [||]));
  Alcotest.(check bool) "max empty nan" true (Float.is_nan (Stats.max [||]))

let test_quantile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  checkf "q0" 10.0 (Stats.quantile xs 0.0);
  checkf "q1" 40.0 (Stats.quantile xs 1.0);
  checkf "median interpolates" 25.0 (Stats.median xs);
  checkf "q0.25" 17.5 (Stats.quantile xs 0.25);
  (* Unsorted input must give the same answer. *)
  checkf "unsorted" 25.0 (Stats.median [| 40.0; 10.0; 30.0; 20.0 |]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.quantile: q outside [0, 1]") (fun () ->
      ignore (Stats.quantile xs 1.5))

let test_confidence () =
  checkf "fewer than two" 0.0 (Stats.confidence95 [| 1.0 |]);
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let expected = 1.96 *. Stats.stddev xs /. sqrt 5.0 in
  checkf "formula" expected (Stats.confidence95 xs)

let test_summarize () =
  let s = Stats.summarize [| 1.0; 3.0; 5.0 |] in
  Alcotest.(check int) "n" 3 s.n;
  checkf "mean" 3.0 s.mean;
  checkf "min" 1.0 s.min;
  checkf "max" 5.0 s.max

let test_welford_matches_batch () =
  let rng = Rng.create 21 in
  let xs = Array.init 1000 (fun _ -> Rng.gaussian rng ~mean:10.0 ~stddev:4.0) in
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) xs;
  Alcotest.(check int) "count" 1000 (Stats.Welford.count w);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean xs) (Stats.Welford.mean w);
  Alcotest.(check (float 1e-6))
    "variance" (Stats.variance xs)
    (Stats.Welford.variance w)

let test_welford_empty () =
  let w = Stats.Welford.create () in
  checkf "empty mean" 0.0 (Stats.Welford.mean w);
  checkf "empty variance" 0.0 (Stats.Welford.variance w)

let suite =
  [
    ("mean", `Quick, test_mean);
    ("variance", `Quick, test_variance);
    ("min/max", `Quick, test_minmax);
    ("quantile and median", `Quick, test_quantile);
    ("confidence interval", `Quick, test_confidence);
    ("summarize", `Quick, test_summarize);
    ("welford matches batch", `Quick, test_welford_matches_batch);
    ("welford empty", `Quick, test_welford_empty);
  ]
