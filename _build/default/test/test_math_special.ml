(* Tests for erf / normal CDF / normal quantile approximations. *)

let checkf tol = Alcotest.(check (float tol))

let test_erf_known_values () =
  (* Reference values to 7 decimals. *)
  checkf 2e-7 "erf 0" 0.0 (Math_special.erf 0.0);
  checkf 2e-7 "erf 0.5" 0.5204999 (Math_special.erf 0.5);
  checkf 2e-7 "erf 1" 0.8427008 (Math_special.erf 1.0);
  checkf 2e-7 "erf 2" 0.9953223 (Math_special.erf 2.0);
  checkf 2e-7 "erf 3" 0.9999779 (Math_special.erf 3.0)

let test_erf_symmetry () =
  List.iter
    (fun x ->
      checkf 1e-12 "odd symmetry" (-.Math_special.erf x)
        (Math_special.erf (-.x)))
    [ 0.1; 0.7; 1.3; 2.5 ]

let test_erfc () =
  List.iter
    (fun x ->
      checkf 1e-12 "erfc = 1 - erf"
        (1.0 -. Math_special.erf x)
        (Math_special.erfc x))
    [ -1.0; 0.0; 0.5; 2.0 ]

let test_normal_cdf () =
  let cdf = Math_special.normal_cdf ~mean:0.0 ~stddev:1.0 in
  checkf 1e-7 "at mean" 0.5 (cdf 0.0);
  checkf 2e-7 "one sigma" 0.8413447 (cdf 1.0);
  checkf 2e-7 "two sigma" 0.9772499 (cdf 2.0);
  checkf 2e-7 "minus one sigma" 0.1586553 (cdf (-1.0));
  (* Location-scale. *)
  checkf 1e-7 "shifted" 0.5 (Math_special.normal_cdf ~mean:10.0 ~stddev:3.0 10.0);
  Alcotest.check_raises "bad stddev"
    (Invalid_argument "Math_special.normal_cdf: stddev <= 0") (fun () ->
      ignore (Math_special.normal_cdf ~mean:0.0 ~stddev:0.0 1.0))

let test_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Math_special.normal_quantile p in
      let back = Math_special.normal_cdf ~mean:0.0 ~stddev:1.0 x in
      checkf 1e-4 (Printf.sprintf "roundtrip p=%g" p) p back)
    [ 0.001; 0.025; 0.2; 0.5; 0.8; 0.975; 0.999 ]

let test_quantile_known () =
  checkf 1e-6 "median" 0.0 (Math_special.normal_quantile 0.5);
  checkf 1e-4 "97.5%" 1.959964 (Math_special.normal_quantile 0.975);
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Math_special.normal_quantile: p outside (0, 1)")
    (fun () -> ignore (Math_special.normal_quantile 0.0))

let suite =
  [
    ("erf known values", `Quick, test_erf_known_values);
    ("erf symmetry", `Quick, test_erf_symmetry);
    ("erfc identity", `Quick, test_erfc);
    ("normal cdf", `Quick, test_normal_cdf);
    ("quantile roundtrip", `Quick, test_quantile_roundtrip);
    ("quantile known values", `Quick, test_quantile_known);
  ]
