let () =
  Alcotest.run "imprecise"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("math_special", Test_math_special.suite);
      ("tvl", Test_tvl.suite);
      ("interval", Test_interval.suite);
      ("uncertain", Test_uncertain.suite);
      ("rect", Test_rect.suite);
      ("real_set", Test_real_set.suite);
      ("predicate", Test_predicate.suite);
      ("storage", Test_storage.suite);
      ("probe", Test_probe.suite);
      ("quality", Test_quality.suite);
      ("counters", Test_counters.suite);
      ("decision", Test_decision.suite);
      ("policy", Test_policy.suite);
      ("operator", Test_operator.suite);
      ("sampling", Test_sampling.suite);
      ("optimizer", Test_optimizer.suite);
      ("workload", Test_workload.suite);
      ("timeseries", Test_timeseries.suite);
      ("moving", Test_moving.suite);
      ("experiments", Test_experiments.suite);
      ("join", Test_join.suite);
      ("interval_index", Test_interval_index.suite);
      ("adaptive", Test_adaptive.suite);
      ("io", Test_io.suite);
      ("relation", Test_relation.suite);
      ("top_k", Test_top_k.suite);
      ("text_table", Test_text_table.suite);
      ("trace", Test_trace.suite);
      ("engine", Test_engine.suite);
      ("interval_tree", Test_interval_tree.suite);
      ("reports", Test_reports.suite);
      ("text", Test_text.suite);
    ]
