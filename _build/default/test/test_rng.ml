(* Tests for the SplitMix64 generator. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  checki "different seeds diverge" 0 !same

let test_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  (* Advancing one does not advance the other. *)
  ignore (Rng.bits64 a);
  ignore (Rng.bits64 a);
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check "diverged states" true (va <> vb)

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = Array.init 32 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 32 (fun _ -> Rng.bits64 b) in
  let collisions = ref 0 in
  Array.iter (fun x -> Array.iter (fun y -> if x = y then incr collisions) ys) xs;
  checki "no stream collisions" 0 !collisions

let test_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10000 do
    let v = Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  (* Chi-square against 8 buckets; bound is generous (p << 1e-6 to fail). *)
  let rng = Rng.create 1234 in
  let buckets = Array.make 8 0 in
  let n = 80000 in
  for _ = 1 to n do
    let b = Rng.int rng 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int n /. 8.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  check "chi-square below 50 (7 dof)" true (chi2 < 50.0)

let test_uniform_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10000 do
    let u = Rng.uniform rng in
    check "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_uniform_in () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.uniform_in rng (-3.0) 5.0 in
    check "in [-3,5)" true (v >= -3.0 && v < 5.0)
  done;
  Alcotest.check_raises "reversed" (Invalid_argument "Rng.uniform_in: lo > hi")
    (fun () -> ignore (Rng.uniform_in rng 1.0 0.0))

let test_bernoulli_extremes () =
  let rng = Rng.create 10 in
  for _ = 1 to 100 do
    check "p=1 always true" true (Rng.bernoulli rng 1.0);
    check "p=0 always false" false (Rng.bernoulli rng 0.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  let n = 50000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_gaussian_moments () =
  let rng = Rng.create 12 in
  let n = 50000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mean:3.0 ~stddev:2.0) in
  check "mean near 3" true (Float.abs (Stats.mean xs -. 3.0) < 0.05);
  check "stddev near 2" true (Float.abs (Stats.stddev xs -. 2.0) < 0.05)

let test_exponential () =
  let rng = Rng.create 13 in
  let n = 50000 in
  let xs = Array.init n (fun _ -> Rng.exponential rng ~rate:2.0) in
  Array.iter (fun x -> check "non-negative" true (x >= 0.0)) xs;
  check "mean near 1/2" true (Float.abs (Stats.mean xs -. 0.5) < 0.02);
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng ~rate:0.0))

let test_shuffle_permutation () =
  let rng = Rng.create 14 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 100 (fun i -> i))
    sorted;
  check "actually shuffled" true (a <> Array.init 100 (fun i -> i))

let test_sample_without_replacement () =
  let rng = Rng.create 15 in
  let s = Rng.sample_without_replacement rng 10 50 in
  checki "size" 10 (Array.length s);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      check "in range" true (i >= 0 && i < 50);
      check "distinct" false (Hashtbl.mem seen i);
      Hashtbl.add seen i ())
    s;
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement rng 5 3))

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("seeds differ", `Quick, test_seeds_differ);
    ("copy is independent", `Quick, test_copy_independent);
    ("split is independent", `Quick, test_split_independent);
    ("int range and errors", `Quick, test_int_range);
    ("int uniformity (chi-square)", `Quick, test_int_uniformity);
    ("uniform range", `Quick, test_uniform_range);
    ("uniform_in range and errors", `Quick, test_uniform_in);
    ("bernoulli extremes", `Quick, test_bernoulli_extremes);
    ("bernoulli rate", `Quick, test_bernoulli_rate);
    ("gaussian moments", `Quick, test_gaussian_moments);
    ("exponential", `Quick, test_exponential);
    ("shuffle is a permutation", `Quick, test_shuffle_permutation);
    ("sample without replacement", `Quick, test_sample_without_replacement);
  ]
