(* Tests for the operator's counter state, including the paper's worked
   example from §2.3 and the guarantee-direction table (Table 1). *)

let checkf tol = Alcotest.(check (float tol))
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_initial_state () =
  let c = Counters.create ~total:100 in
  checki "unseen" 100 (Counters.unseen c);
  checkf 0.0 "precision starts at 1 (empty answer)" 1.0
    (Counters.precision_guarantee c);
  checkf 0.0 "recall starts at 0" 0.0 (Counters.recall_guarantee c);
  (* Empty input: both guarantees are vacuous. *)
  let empty = Counters.create ~total:0 in
  checkf 0.0 "empty input recall" 1.0 (Counters.recall_guarantee empty);
  Alcotest.check_raises "negative total"
    (Invalid_argument "Counters.create: total < 0") (fun () ->
      ignore (Counters.create ~total:(-1)))

let test_paper_worked_example () =
  (* §2.3: |T| = 1000, 200 objects seen: 100 YES (80 forwarded, 20
     ignored), 50 MAYBE (20 probed: 10 YES + 10 NO; 20 forwarded; 10
     ignored), 50 NO. *)
  let c = Counters.create ~total:1000 in
  for _ = 1 to 80 do
    Counters.forward_yes c ~laxity:1.0
  done;
  for _ = 1 to 20 do
    Counters.ignore_yes c
  done;
  for _ = 1 to 10 do
    Counters.probe_maybe_yes c
  done;
  for _ = 1 to 10 do
    Counters.probe_maybe_no c
  done;
  for _ = 1 to 20 do
    Counters.forward_maybe c ~laxity:2.0
  done;
  for _ = 1 to 10 do
    Counters.ignore_maybe c
  done;
  for _ = 1 to 50 do
    Counters.saw_no c
  done;
  checki "unseen" 800 (Counters.unseen c);
  checki "|Y| = 110" 110 (Counters.yes_seen c);
  checki "|A∩Y| = 90" 90 (Counters.answer_yes c);
  checki "|A| = 110" 110 (Counters.answer_size c);
  checki "|M_s - A| = 10" 10 (Counters.maybe_ignored c);
  (* p^G = 90/110 ≈ 0.81 as in the paper.  For r^G Eq. 9 gives
     |A∩Y| / (|Y| + |M_ns| + |M_s−A|) = 90 / (110 + 800 + 10) = 90/920:
     the paper's prose tallies 90/930 by adding the 20 ignored YES
     objects again, but those are already inside |Y| = 110 — an
     arithmetic slip in the example, not in Eq. 9 (both round to the
     0.097 the paper reports). *)
  checkf 1e-9 "p^G" (90.0 /. 110.0) (Counters.precision_guarantee c);
  checkf 1e-9 "r^G (Eq. 9)" (90.0 /. 920.0) (Counters.recall_guarantee c);
  checkf 1e-9 "l^max" 2.0 (Counters.max_laxity c)

(* Table 1: the direction each event moves each guarantee. *)
let test_guarantee_directions () =
  let base () =
    let c = Counters.create ~total:100 in
    Counters.forward_yes c ~laxity:5.0;
    Counters.forward_maybe c ~laxity:3.0;
    Counters.ignore_maybe c;
    c
  in
  let observe event =
    let c = base () in
    let p0 = Counters.precision_guarantee c in
    let r0 = Counters.recall_guarantee c in
    let l0 = Counters.max_laxity c in
    event c;
    ( compare (Counters.precision_guarantee c) p0,
      compare (Counters.recall_guarantee c) r0,
      compare (Counters.max_laxity c) l0 )
  in
  let checkdir name expected event =
    Alcotest.(check (triple int int int)) name expected (observe event)
  in
  checkdir "NO: p= r+ l=" (0, 1, 0) Counters.saw_no;
  checkdir "YES forward (low laxity): p+ r+ l=" (1, 1, 0) (fun c ->
      Counters.forward_yes c ~laxity:1.0);
  checkdir "YES forward (high laxity): p+ r+ l+" (1, 1, 1) (fun c ->
      Counters.forward_yes c ~laxity:9.0);
  checkdir "YES probe: p+ r+ l=" (1, 1, 0) Counters.probe_yes;
  checkdir "YES ignore: p= r= l=" (0, 0, 0) Counters.ignore_yes;
  checkdir "MAYBE forward: p- r+ l=" (-1, 1, 0) (fun c ->
      Counters.forward_maybe c ~laxity:1.0);
  checkdir "MAYBE probe->YES: p+ r+ l=" (1, 1, 0) Counters.probe_maybe_yes;
  checkdir "MAYBE probe->NO: p= r+ l=" (0, 1, 0) Counters.probe_maybe_no;
  checkdir "MAYBE ignore: p= r= l=" (0, 0, 0) Counters.ignore_maybe

let test_worst_case_final_recall () =
  let c = Counters.create ~total:10 in
  Counters.forward_yes c ~laxity:1.0;
  (* 1 answered YES of 1 seen YES: worst case 1. *)
  checkf 0.0 "perfect so far" 1.0 (Counters.worst_case_final_recall c);
  Counters.ignore_yes c;
  checkf 1e-12 "half after ignoring a YES" 0.5 (Counters.worst_case_final_recall c);
  Counters.ignore_maybe c;
  checkf 1e-12 "third after ignoring a MAYBE" (1.0 /. 3.0)
    (Counters.worst_case_final_recall c)

(* Random event sequences: the recall guarantee never decreases, the
   worst-case final recall only decreases via ignores, and the recall
   guarantee is always a lower bound on the worst-case final recall. *)
let prop_guarantee_monotonicity =
  let event_gen = QCheck2.Gen.int_range 0 7 in
  QCheck2.Test.make ~name:"recall guarantee is monotone; bounds ordered"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 80) event_gen)
    (fun events ->
      let c = Counters.create ~total:100 in
      let ok = ref true in
      let apply i =
        match i with
        | 0 -> Counters.saw_no c
        | 1 -> Counters.forward_yes c ~laxity:1.0
        | 2 -> Counters.probe_yes c
        | 3 -> Counters.ignore_yes c
        | 4 -> Counters.forward_maybe c ~laxity:2.0
        | 5 -> Counters.probe_maybe_yes c
        | 6 -> Counters.probe_maybe_no c
        | _ -> Counters.ignore_maybe c
      in
      List.iteri
        (fun n i ->
          if n < 100 then begin
            let r_before = Counters.recall_guarantee c in
            apply i;
            if Counters.recall_guarantee c < r_before -. 1e-12 then ok := false;
            if
              Counters.recall_guarantee c
              > Counters.worst_case_final_recall c +. 1e-12
            then ok := false
          end)
        events;
      !ok)

let test_copy_is_independent () =
  let a = Counters.create ~total:10 in
  Counters.forward_yes a ~laxity:1.0;
  let b = Counters.copy a in
  Counters.forward_yes a ~laxity:1.0;
  checki "copy frozen" 1 (Counters.answer_size b);
  checki "original advanced" 2 (Counters.answer_size a)

let suite =
  [
    ("initial state", `Quick, test_initial_state);
    ("paper worked example (section 2.3)", `Quick, test_paper_worked_example);
    ("Table 1 guarantee directions", `Quick, test_guarantee_directions);
    ("worst-case final recall", `Quick, test_worst_case_final_recall);
    ("copy independence", `Quick, test_copy_is_independent);
    QCheck_alcotest.to_alcotest prop_guarantee_monotonicity;
  ]
