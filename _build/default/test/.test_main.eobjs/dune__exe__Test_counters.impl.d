test/test_counters.ml: Alcotest Counters List QCheck2 QCheck_alcotest
