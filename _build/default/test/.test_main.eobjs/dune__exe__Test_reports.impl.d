test/test_reports.ml: Alcotest Band_join Cost_meter Exp_config Exp_report Fun Interval Interval_data List Operator Policy Probe_source Quality Rng String Synthetic Text_table
