test/test_policy.ml: Alcotest Counters Decision Float Policy Quality Rng Tvl
