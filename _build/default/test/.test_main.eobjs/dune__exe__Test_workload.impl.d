test/test_workload.ml: Alcotest Array Float Interval Interval_data Predicate Printf QCheck2 QCheck_alcotest Rng Stats Stdlib Synthetic Tvl Uncertain
