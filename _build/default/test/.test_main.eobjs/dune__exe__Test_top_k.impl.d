test/test_top_k.ml: Alcotest Array Interval Interval_data List QCheck2 QCheck_alcotest Quality Rng Top_k Tvl Uncertain
