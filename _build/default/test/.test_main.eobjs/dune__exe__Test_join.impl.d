test/test_join.ml: Alcotest Band_join Float Interval Interval_data List Operator Pair_distance Policy QCheck2 QCheck_alcotest Quality Rng Tvl
