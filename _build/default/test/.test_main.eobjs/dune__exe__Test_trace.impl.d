test/test_trace.ml: Adaptive Alcotest Array Cost_model Float List Operator Policy Quality Region_model Rng Solver Synthetic Tvl
