test/test_text.ml: Alcotest Array Bytes Char Edit_distance List Operator Policy QCheck2 QCheck_alcotest Qgram Quality Rng String Text_query Tvl
