test/test_timeseries.ml: Alcotest Array Fun Interval List Operator Paa Policy QCheck2 QCheck_alcotest Quality Rng Seq Stdlib Time_series Ts_query Tvl
