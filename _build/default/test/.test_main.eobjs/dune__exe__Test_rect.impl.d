test/test_rect.ml: Alcotest Interval QCheck2 QCheck_alcotest Rect Rng Tvl
