test/test_interval_tree.ml: Alcotest Array Float Interval Interval_index Interval_tree List Predicate QCheck2 QCheck_alcotest Rng
