test/test_real_set.ml: Alcotest Interval List QCheck2 QCheck_alcotest Real_set
