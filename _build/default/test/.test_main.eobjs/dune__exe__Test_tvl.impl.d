test/test_tvl.ml: Alcotest List Tvl
