test/test_io.ml: Alcotest Array Csv Dataset_io Filename Fun Interval Interval_data List QCheck2 QCheck_alcotest Rng Synthetic Sys Tvl Uncertain
