test/test_rng.ml: Alcotest Array Float Hashtbl Rng Stats
