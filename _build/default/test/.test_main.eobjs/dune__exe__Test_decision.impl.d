test/test_decision.ml: Alcotest Counters Decision List QCheck2 QCheck_alcotest Quality Tvl
