test/test_predicate.ml: Alcotest Float Interval Predicate QCheck2 QCheck_alcotest Real_set Rng Tvl Uncertain
