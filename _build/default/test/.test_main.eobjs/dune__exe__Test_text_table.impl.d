test/test_text_table.ml: Alcotest List String Text_table
