test/test_quality.ml: Alcotest Quality
