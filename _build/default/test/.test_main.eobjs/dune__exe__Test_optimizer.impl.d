test/test_optimizer.ml: Alcotest Array Cost_model Density Float Grid List Nelder_mead Policy Printf Quality Region_model Rng Selectivity Solver String Synthetic
