test/test_moving.ml: Alcotest Array Interval List Moving_object Operator Policy Quality Rect Rng Tvl
