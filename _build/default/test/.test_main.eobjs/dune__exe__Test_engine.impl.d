test/test_engine.ml: Alcotest Engine Float Policy Quality Rng Synthetic
