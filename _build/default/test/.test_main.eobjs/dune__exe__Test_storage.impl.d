test/test_storage.ml: Alcotest Array Buffer_pool Cost_meter Cost_model Fun Heap_file Interval List Predicate QCheck2 QCheck_alcotest Rng Tvl Zone_map
