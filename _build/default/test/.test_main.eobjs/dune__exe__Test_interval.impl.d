test/test_interval.ml: Alcotest Float Interval QCheck2 QCheck_alcotest Rng Tvl
