test/test_stats.ml: Alcotest Array Float Rng Stats
