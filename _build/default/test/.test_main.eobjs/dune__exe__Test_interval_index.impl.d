test/test_interval_index.ml: Alcotest Array Interval Interval_data Interval_index List Operator Policy Predicate QCheck2 QCheck_alcotest Quality Rng Tvl Uncertain
