test/test_sampling.ml: Alcotest Array Float Histogram List Reservoir Rng Selectivity Synthetic
