test/test_relation.ml: Alcotest Array Cost_meter List Operator Predicate QCheck2 QCheck_alcotest Quality Relation Rng Tvl Uncertain
