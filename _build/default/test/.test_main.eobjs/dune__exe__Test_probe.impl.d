test/test_probe.ml: Alcotest Array Fun Interval Predicate Probe_source Rng Sensor_net Tvl
