test/test_operator.ml: Alcotest Array Cost_meter Float Heap_file Interval Interval_data List Operator Policy Predicate QCheck2 QCheck_alcotest Quality Rng Synthetic Uncertain Unix Zone_map
