test/test_uncertain.ml: Alcotest Float Interval QCheck2 QCheck_alcotest Rng Tvl Uncertain
