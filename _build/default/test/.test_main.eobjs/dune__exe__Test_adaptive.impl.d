test/test_adaptive.ml: Adaptive Alcotest Array Cost_model List Operator Policy Printf Quality Region_model Rng Solver Synthetic
