test/test_experiments.ml: Alcotest Cost_meter Cost_model Exp_config Exp_runner Float List Paper_tables Policy Printf Rng String Synthetic
