test/test_math_special.ml: Alcotest List Math_special Printf
