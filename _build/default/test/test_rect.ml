(* Tests for the 2-D rectangle imprecision model. *)

let tvl = Alcotest.testable Tvl.pp Tvl.equal
let checkf tol = Alcotest.(check (float tol))

let rect x0 x1 y0 y1 = Rect.make (Interval.make x0 x1) (Interval.make y0 y1)

let test_geometry () =
  let r = rect 0.0 3.0 0.0 4.0 in
  checkf 1e-12 "area" 12.0 (Rect.area r);
  checkf 1e-12 "laxity is the diagonal" 5.0 (Rect.laxity r);
  Alcotest.(check bool) "contains corner" true
    (Rect.contains r { Rect.x = 0.0; y = 0.0 });
  Alcotest.(check bool) "outside" false
    (Rect.contains r { Rect.x = 5.0; y = 1.0 });
  let p = Rect.of_point { Rect.x = 1.0; y = 1.0 } in
  checkf 1e-12 "point laxity" 0.0 (Rect.laxity p)

let test_of_center () =
  let r = Rect.of_center { Rect.x = 5.0; y = 5.0 } ~radius:2.0 in
  checkf 1e-12 "x lo" 3.0 (Interval.lo (Rect.x_range r));
  checkf 1e-12 "y hi" 7.0 (Interval.hi (Rect.y_range r));
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Rect.of_center: negative radius") (fun () ->
      ignore (Rect.of_center { Rect.x = 0.0; y = 0.0 } ~radius:(-1.0)))

let test_classification () =
  let window = rect 0.0 10.0 0.0 10.0 in
  Alcotest.check tvl "inside" Tvl.Yes
    (Rect.classify_in (rect 2.0 4.0 2.0 4.0) window);
  Alcotest.check tvl "straddling" Tvl.Maybe
    (Rect.classify_in (rect 8.0 12.0 2.0 4.0) window);
  Alcotest.check tvl "outside" Tvl.No
    (Rect.classify_in (rect 20.0 22.0 2.0 4.0) window)

let test_success_area_fraction () =
  let window = rect 0.0 10.0 0.0 10.0 in
  (* Half the object's area overlaps the window. *)
  checkf 1e-12 "half overlap" 0.5
    (Rect.success_in (rect 8.0 12.0 2.0 4.0) window);
  checkf 1e-12 "full overlap" 1.0 (Rect.success_in (rect 1.0 2.0 1.0 2.0) window);
  checkf 1e-12 "no overlap" 0.0 (Rect.success_in (rect 20.0 21.0 1.0 2.0) window);
  (* Degenerate point object. *)
  checkf 1e-12 "point inside" 1.0
    (Rect.success_in (Rect.of_point { Rect.x = 5.0; y = 5.0 }) window);
  (* Degenerate segment object: length fraction. *)
  let segment = Rect.make (Interval.make 8.0 12.0) (Interval.point 5.0) in
  checkf 1e-12 "segment half covered" 0.5 (Rect.success_in segment window)

let rect_gen =
  QCheck2.Gen.(
    let* x0 = float_range (-50.0) 50.0 in
    let* y0 = float_range (-50.0) 50.0 in
    let* w = float_range 0.0 20.0 in
    let* h = float_range 0.0 20.0 in
    return (rect x0 (x0 +. w) y0 (y0 +. h)))

let prop_sample_inside =
  QCheck2.Test.make ~name:"samples stay inside" ~count:300 rect_gen (fun r ->
      let rng = Rng.create 8 in
      let p = Rect.sample rng r in
      Rect.contains r p)

let prop_success_consistent =
  QCheck2.Test.make ~name:"classification extremes match success" ~count:300
    QCheck2.Gen.(pair rect_gen rect_gen)
    (fun (o, window) ->
      let s = Rect.success_in o window in
      (s >= 0.0 && s <= 1.0)
      &&
      match Rect.classify_in o window with
      | Tvl.Yes -> s = 1.0
      | Tvl.No -> s = 0.0
      | Tvl.Maybe -> true)

let prop_subset_implies_yes =
  QCheck2.Test.make ~name:"subset classifies YES" ~count:300
    QCheck2.Gen.(pair rect_gen (pair (float_range 1.0 10.0) (float_range 1.0 10.0)))
    (fun (o, (mx, my)) ->
      (* Grow the object into a window that surely contains it. *)
      let window =
        Rect.make
          (Interval.make (Interval.lo (Rect.x_range o) -. mx)
             (Interval.hi (Rect.x_range o) +. mx))
          (Interval.make (Interval.lo (Rect.y_range o) -. my)
             (Interval.hi (Rect.y_range o) +. my))
      in
      Tvl.equal (Rect.classify_in o window) Tvl.Yes)

let suite =
  [
    ("geometry", `Quick, test_geometry);
    ("of_center", `Quick, test_of_center);
    ("classification", `Quick, test_classification);
    ("success as area fraction", `Quick, test_success_area_fraction);
    QCheck_alcotest.to_alcotest prop_sample_inside;
    QCheck_alcotest.to_alcotest prop_success_consistent;
    QCheck_alcotest.to_alcotest prop_subset_implies_yes;
  ]
