(* Tests for decision policies and the (s, l)-plane regions. *)

let req ?(p = 0.9) ?(r = 0.5) ?(l = 50.0) () =
  Quality.requirements ~precision:p ~recall:r ~laxity:l

let action = Alcotest.testable Decision.pp_action Decision.equal_action
let actions = Alcotest.(list action)

let prefer ?(params = Policy.stingy_params) ?(seed = 1) ?(requirements = req ())
    ~verdict ~laxity ~success () =
  let counters = Counters.create ~total:100 in
  Policy.preference (Policy.Region params) ~rng:(Rng.create seed) ~requirements
    ~counters ~verdict ~laxity ~success

let test_params_validation () =
  Alcotest.check_raises "s3 out of range"
    (Invalid_argument "Policy.params: s3 outside [0, 1]") (fun () ->
      ignore (Policy.params ~s3:1.5 ~s5:1.0 ~p_py:0.0 ~p_fm:0.0));
  Alcotest.check_raises "negative p_fm"
    (Invalid_argument "Policy.params: p_fm outside [0, 1]") (fun () ->
      ignore (Policy.params ~s3:1.0 ~s5:1.0 ~p_py:0.0 ~p_fm:(-0.1)))

let test_baseline_params () =
  let s = Policy.stingy_params in
  Alcotest.(check (float 0.0)) "stingy s3" 1.0 s.s3;
  Alcotest.(check (float 0.0)) "stingy p_py" 0.0 s.p_py;
  let g = Policy.greedy_params in
  Alcotest.(check (float 0.0)) "greedy s3" 0.0 g.s3;
  Alcotest.(check (float 0.0)) "greedy s5" 1.0 g.s5;
  Alcotest.(check (float 0.0)) "greedy p_fm" 1.0 g.p_fm

let test_region7_forwards () =
  Alcotest.check actions "YES below bound"
    [ Decision.Forward; Decision.Probe ]
    (prefer ~verdict:Tvl.Yes ~laxity:10.0 ~success:1.0 ())

let test_region6_randomised () =
  (* p_py = 1: always probe; p_py = 0: always ignore-first. *)
  let p1 = Policy.params ~s3:1.0 ~s5:1.0 ~p_py:1.0 ~p_fm:0.0 in
  Alcotest.check actions "p_py=1 probes" [ Decision.Probe ]
    (prefer ~params:p1 ~verdict:Tvl.Yes ~laxity:90.0 ~success:1.0 ());
  Alcotest.check actions "p_py=0 ignores"
    [ Decision.Ignore; Decision.Probe ]
    (prefer ~verdict:Tvl.Yes ~laxity:90.0 ~success:1.0 ())

let test_maybe_regions () =
  let p = Policy.params ~s3:0.7 ~s5:0.4 ~p_py:0.0 ~p_fm:1.0 in
  (* Region 3: high laxity, s above s3 -> probe. *)
  Alcotest.check actions "region 3" [ Decision.Probe ]
    (prefer ~params:p ~verdict:Tvl.Maybe ~laxity:90.0 ~success:0.8 ());
  (* Region 2: high laxity, s below s3 -> ignore (probe fallback). *)
  Alcotest.check actions "region 2" [ Decision.Ignore; Decision.Probe ]
    (prefer ~params:p ~verdict:Tvl.Maybe ~laxity:90.0 ~success:0.6 ());
  (* Region 5: low laxity, s above s5 -> probe. *)
  Alcotest.check actions "region 5" [ Decision.Probe ]
    (prefer ~params:p ~verdict:Tvl.Maybe ~laxity:10.0 ~success:0.5 ());
  (* Region 4 with p_fm = 1 -> forward. *)
  Alcotest.check actions "region 4 forward" [ Decision.Forward; Decision.Probe ]
    (prefer ~params:p ~verdict:Tvl.Maybe ~laxity:10.0 ~success:0.3 ());
  (* Region 4 with p_fm = 0 -> ignore, forward, probe. *)
  Alcotest.check actions "region 4 ignore"
    [ Decision.Ignore; Decision.Forward; Decision.Probe ]
    (prefer ~verdict:Tvl.Maybe ~laxity:10.0 ~success:0.3 ())

let test_no_rejected () =
  Alcotest.check_raises "NO never reaches the policy"
    (Invalid_argument "Policy.preference: NO objects never reach the policy")
    (fun () -> ignore (prefer ~verdict:Tvl.No ~laxity:1.0 ~success:0.0 ()))

let test_custom_policy () =
  let policy =
    Policy.Custom
      (fun ~requirements:_ ~counters:_ ~verdict:_ ~laxity:_ ~success:_ ->
        [ Decision.Probe ])
  in
  let counters = Counters.create ~total:10 in
  Alcotest.check actions "custom passthrough" [ Decision.Probe ]
    (Policy.preference policy ~rng:(Rng.create 1) ~requirements:(req ())
       ~counters ~verdict:Tvl.Maybe ~laxity:1.0 ~success:0.5)

let test_region_of () =
  let params = Policy.params ~s3:0.7 ~s5:0.4 ~p_py:0.5 ~p_fm:0.5 in
  let region ~verdict ~laxity ~success =
    Policy.region_of ~params ~laxity_bound:50.0 ~verdict ~laxity ~success
  in
  Alcotest.(check int) "NO" 1 (region ~verdict:Tvl.No ~laxity:0.0 ~success:0.0);
  Alcotest.(check int) "YES high" 6 (region ~verdict:Tvl.Yes ~laxity:60.0 ~success:1.0);
  Alcotest.(check int) "YES low" 7 (region ~verdict:Tvl.Yes ~laxity:40.0 ~success:1.0);
  Alcotest.(check int) "MAYBE high ignored" 2
    (region ~verdict:Tvl.Maybe ~laxity:60.0 ~success:0.5);
  Alcotest.(check int) "MAYBE high probed" 3
    (region ~verdict:Tvl.Maybe ~laxity:60.0 ~success:0.9);
  Alcotest.(check int) "MAYBE low forward band" 4
    (region ~verdict:Tvl.Maybe ~laxity:40.0 ~success:0.2);
  Alcotest.(check int) "MAYBE low probed" 5
    (region ~verdict:Tvl.Maybe ~laxity:40.0 ~success:0.9)

let test_ambiguity () =
  Alcotest.(check (float 1e-12)) "certain yes" 1.0 (Policy.ambiguity ~success:1.0);
  Alcotest.(check (float 1e-12)) "certain no" 1.0 (Policy.ambiguity ~success:0.0);
  Alcotest.(check (float 1e-12)) "most ambiguous" 0.0 (Policy.ambiguity ~success:0.5);
  Alcotest.(check (float 1e-12)) "intermediate" 0.5 (Policy.ambiguity ~success:0.75)

(* The randomised choices respect their probabilities. *)
let test_randomised_rates () =
  let p = Policy.params ~s3:1.0 ~s5:1.0 ~p_py:0.3 ~p_fm:0.0 in
  let rng = Rng.create 55 in
  let counters = Counters.create ~total:1000 in
  let probes = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    match
      Policy.preference (Policy.Region p) ~rng ~requirements:(req ()) ~counters
        ~verdict:Tvl.Yes ~laxity:90.0 ~success:1.0
    with
    | Decision.Probe :: _ -> incr probes
    | _ -> ()
  done;
  let rate = float_of_int !probes /. float_of_int n in
  Alcotest.(check bool) "p_py respected" true (Float.abs (rate -. 0.3) < 0.02)

let suite =
  [
    ("params validation", `Quick, test_params_validation);
    ("baseline parameters", `Quick, test_baseline_params);
    ("region 7 forwards", `Quick, test_region7_forwards);
    ("region 6 randomised", `Quick, test_region6_randomised);
    ("maybe regions", `Quick, test_maybe_regions);
    ("NO rejected", `Quick, test_no_rejected);
    ("custom policy", `Quick, test_custom_policy);
    ("region_of mapping", `Quick, test_region_of);
    ("ambiguity metric", `Quick, test_ambiguity);
    ("randomised rates", `Quick, test_randomised_rates);
  ]
