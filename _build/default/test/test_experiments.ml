(* Regression tests for the experiment harness: the reproduction must
   keep tracking the paper's published numbers. *)

let checkb = Alcotest.(check bool)

let test_sweeps_well_formed () =
  List.iter
    (fun (sweep : Exp_config.sweep) ->
      checkb "has settings" true (List.length sweep.settings > 0);
      (* One paper row per setting, in the same order. *)
      let opt = Paper_tables.opt_rows ~sweep_id:sweep.id in
      let trial = Paper_tables.trial_rows ~sweep_id:sweep.id in
      Alcotest.(check int) "opt arity" (List.length sweep.settings) (List.length opt);
      Alcotest.(check int) "trial arity" (List.length sweep.settings) (List.length trial);
      List.iter2
        (fun (s : Exp_config.setting) (p : Paper_tables.opt_row) ->
          Alcotest.(check string) "labels align" s.label p.label)
        sweep.settings opt)
    Exp_config.all_sweeps;
  checkb "find_sweep" true (Exp_config.find_sweep "laxity" <> None);
  checkb "find_sweep missing" true (Exp_config.find_sweep "nope" = None)

(* §5.1 regression across a full sweep: optimal cost within 5% + 0.05 of
   the paper (paper values are printed to one decimal).  The known
   inconsistent row (uncertainty, f_m = 0.6) is excluded. *)
let test_opt_costs_track_paper () =
  List.iter
    (fun (sweep : Exp_config.sweep) ->
      let paper = Paper_tables.opt_rows ~sweep_id:sweep.id in
      List.iter2
        (fun (s : Exp_config.setting) (row : Paper_tables.opt_row) ->
          let skip = String.equal sweep.id "uncertainty" && String.equal row.label "0.6" in
          if not skip then begin
            let e = Exp_runner.solve_setting s in
            checkb (Printf.sprintf "%s/%s feasible" sweep.id s.label) true e.feasible;
            let tolerance = (0.05 *. row.w_norm) +. 0.05 in
            checkb
              (Printf.sprintf "%s/%s cost %.3f ~ paper %.2f" sweep.id s.label
                 e.normalized_cost row.w_norm)
              true
              (Float.abs (e.normalized_cost -. row.w_norm) <= tolerance)
          end)
        sweep.settings paper)
    [ Exp_config.varying_laxity; Exp_config.varying_uncertainty ]

(* §5.2 regression on the default setting: measured trial costs within a
   modest band of the paper's, and the paper's headline ordering holds
   (QaQ <= Stingy at the default point; Greedy worst). *)
let test_trial_costs_track_paper () =
  let rng = Rng.create 99 in
  let setting = { Exp_config.default with label = "default" } in
  let results =
    Exp_runner.trial_series ~rng ~repetitions:5 setting
      [ Exp_runner.Qaq; Exp_runner.Stingy; Exp_runner.Greedy ]
  in
  let cost kind = (List.assoc kind results).Exp_runner.mean_cost in
  (* Paper (varying precision, p_q = 0.9): QaQ 10.2, Stingy 11.8,
     Greedy 16.7. *)
  let within value paper band =
    Float.abs (value -. paper) <= band *. paper
  in
  checkb "QaQ near paper" true (within (cost Exp_runner.Qaq) 10.2 0.2);
  checkb "Stingy near paper" true (within (cost Exp_runner.Stingy) 11.8 0.2);
  checkb "Greedy near paper" true (within (cost Exp_runner.Greedy) 16.7 0.2);
  checkb "QaQ beats Stingy" true (cost Exp_runner.Qaq < cost Exp_runner.Stingy);
  checkb "Stingy beats Greedy" true (cost Exp_runner.Stingy < cost Exp_runner.Greedy)

(* Soundness across a sweep: the enforced policies never violate their
   requirements, on any run. *)
let test_enforced_policies_never_violate () =
  let rng = Rng.create 123 in
  List.iter
    (fun (s : Exp_config.setting) ->
      let s = { s with total = 3000 } in
      List.iter
        (fun (_, (a : Exp_runner.aggregate)) ->
          checkb "no precision violation" true (a.worst_precision_violation <= 1e-9);
          checkb "no recall violation" true (a.worst_recall_violation <= 1e-9))
        (Exp_runner.trial_series ~rng ~repetitions:2 s
           [ Exp_runner.Qaq; Exp_runner.Stingy ]))
    Exp_config.varying_recall.settings

(* The crossover the paper highlights: at very high recall Greedy's
   aggressive policy wins over Stingy's. *)
let test_recall_crossover_shape () =
  let rng = Rng.create 7 in
  let at r_q =
    let s = { Exp_config.default with r_q; label = "x" } in
    Exp_runner.trial_series ~rng ~repetitions:3 s
      [ Exp_runner.Stingy; Exp_runner.Greedy ]
  in
  let cost results kind = (List.assoc kind results).Exp_runner.mean_cost in
  let low = at 0.1 in
  checkb "low recall: Stingy wins big" true
    (cost low Exp_runner.Stingy < 0.5 *. cost low Exp_runner.Greedy);
  let high = at 0.99 in
  checkb "high recall: Greedy wins" true
    (cost high Exp_runner.Greedy < cost high Exp_runner.Stingy)

let test_trial_outcome_fields () =
  let rng = Rng.create 11 in
  let setting = { Exp_config.default with total = 2000; label = "t" } in
  let data = Synthetic.generate rng (Exp_config.workload setting) in
  let o = Exp_runner.trial_run ~rng ~setting ~data Exp_runner.Stingy in
  checkb "met requirements" true o.met_requirements;
  checkb "read fraction sane" true (o.read_fraction > 0.0 && o.read_fraction <= 1.0);
  checkb "params recorded" true (o.params_used = Some Policy.stingy_params);
  checkb "cost consistent with counts" true
    (Float.abs
       (o.cost -. Cost_meter.cost_of_counts Cost_model.paper o.counts)
    < 1e-9)

let suite =
  [
    ("sweeps well formed", `Quick, test_sweeps_well_formed);
    ("5.1 optimal costs track paper", `Slow, test_opt_costs_track_paper);
    ("5.2 trial costs track paper", `Slow, test_trial_costs_track_paper);
    ("enforced policies never violate", `Slow, test_enforced_policies_never_violate);
    ("recall crossover shape", `Slow, test_recall_crossover_shape);
    ("trial outcome fields", `Quick, test_trial_outcome_fields);
  ]
