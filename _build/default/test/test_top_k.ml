(* Tests for quality-aware top-k selection. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let tvl = Alcotest.testable Tvl.pp Tvl.equal

let record id lo hi truth : Interval_data.record =
  {
    id;
    belief = (if lo = hi then Uncertain.exact lo else Uncertain.interval lo hi);
    truth;
  }

let test_classify_simple () =
  (* Three well-separated records: top-1 is certain. *)
  let records =
    [| record 0 90.0 95.0 92.0; record 1 50.0 55.0 52.0; record 2 10.0 15.0 12.0 |]
  in
  let v = Top_k.classify ~k:1 records in
  Alcotest.check tvl "best certain" Tvl.Yes v.(0);
  Alcotest.check tvl "middle out" Tvl.No v.(1);
  Alcotest.check tvl "worst out" Tvl.No v.(2);
  (* With k = 2 the middle joins. *)
  let v = Top_k.classify ~k:2 records in
  Alcotest.check tvl "middle in for k=2" Tvl.Yes v.(1)

let test_classify_overlap () =
  let records =
    [| record 0 80.0 100.0 90.0; record 1 75.0 95.0 85.0; record 2 0.0 10.0 5.0 |]
  in
  let v = Top_k.classify ~k:1 records in
  Alcotest.check tvl "contender maybe" Tvl.Maybe v.(0);
  Alcotest.check tvl "contender maybe too" Tvl.Maybe v.(1);
  Alcotest.check tvl "far below out" Tvl.No v.(2)

let test_classify_k_equals_n () =
  let records = [| record 0 0.0 10.0 5.0; record 1 0.0 10.0 6.0 |] in
  let v = Top_k.classify ~k:2 records in
  Alcotest.check tvl "everyone in" Tvl.Yes v.(0);
  Alcotest.check tvl "everyone in (2)" Tvl.Yes v.(1);
  Alcotest.check_raises "k = 0" (Invalid_argument "Top_k.classify: k out of range")
    (fun () -> ignore (Top_k.classify ~k:0 records))

let test_ties_break_by_id () =
  (* Two identical exact values: the smaller id wins the spot. *)
  let records = [| record 0 5.0 5.0 5.0; record 1 5.0 5.0 5.0 |] in
  let v = Top_k.classify ~k:1 records in
  Alcotest.check tvl "smaller id certain" Tvl.Yes v.(0);
  Alcotest.check tvl "larger id out" Tvl.No v.(1);
  let top = Top_k.exact_top_k ~k:1 records in
  checki "ground truth agrees" 0 (List.hd top).id

let random_records seed n =
  Interval_data.uniform_intervals (Rng.create seed) ~n
    ~value_range:(Interval.make 0.0 1000.0) ~max_width:60.0

(* Certified members really are top-k members — the central soundness
   property, fuzzed. *)
let prop_certified_sound =
  QCheck2.Test.make ~name:"certified members are truly in the top-k" ~count:150
    QCheck2.Gen.(pair (int_range 0 5000) (int_range 1 40))
    (fun (seed, k) ->
      let records = random_records seed 120 in
      let verdicts = Top_k.classify ~k records in
      let truth_ids =
        Top_k.exact_top_k ~k records
        |> List.map (fun (r : Interval_data.record) -> r.id)
      in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          match (v : Tvl.t) with
          | Tvl.Yes -> if not (List.mem records.(i).id truth_ids) then ok := false
          | Tvl.No -> if List.mem records.(i).id truth_ids then ok := false
          | Tvl.Maybe -> ())
        verdicts;
      !ok)

let test_run_meets_requirements () =
  let records = random_records 7 500 in
  let requirements = Quality.requirements ~precision:1.0 ~recall:0.8 ~laxity:20.0 in
  let report = Top_k.run ~requirements ~k:25 records in
  checkb "meets" true (Quality.meets report.guarantees requirements);
  checki "reads everything once" 500 report.counts.reads;
  checkb "certified enough" true (float_of_int report.certified >= 0.8 *. 25.0);
  (* Every answered record is truly top-k. *)
  let truth_ids =
    Top_k.exact_top_k ~k:25 records
    |> List.map (fun (r : Interval_data.record) -> r.id)
  in
  List.iter
    (fun (r : Interval_data.record) ->
      checkb "member sound" true (List.mem r.id truth_ids);
      checkb "laxity bound" true (Uncertain.laxity r.belief <= 20.0))
    report.answer

let test_run_perfect_recall_is_exact () =
  let records = random_records 8 300 in
  let requirements = Quality.requirements ~precision:1.0 ~recall:1.0 ~laxity:0.0 in
  let report = Top_k.run ~requirements ~k:20 records in
  checki "exactly k members" 20 report.certified;
  let expected =
    Top_k.exact_top_k ~k:20 records
    |> List.map (fun (r : Interval_data.record) -> r.id)
    |> List.sort compare
  in
  let got =
    report.answer
    |> List.map (fun (r : Interval_data.record) -> r.id)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "the exact top-k" expected got;
  (* All answered precise. *)
  List.iter
    (fun (r : Interval_data.record) ->
      checkb "resolved" true (Uncertain.laxity r.belief = 0.0))
    report.answer

let test_probe_savings_scale_with_recall () =
  let records = random_records 9 800 in
  let probes r_q =
    let requirements = Quality.requirements ~precision:1.0 ~recall:r_q ~laxity:1000.0 in
    (Top_k.run ~requirements ~k:40 records).counts.probes
  in
  let p_low = probes 0.3 and p_mid = probes 0.7 and p_full = probes 1.0 in
  checkb "monotone" true (p_low <= p_mid && p_mid <= p_full);
  checkb "partial recall saves probes" true (p_low < p_full);
  (* Even the exact answer probes far fewer than all records. *)
  checkb "never probes everything" true (p_full < 800)

let test_zero_recall_no_probes () =
  let records = random_records 10 100 in
  let requirements = Quality.requirements ~precision:1.0 ~recall:0.0 ~laxity:50.0 in
  let report = Top_k.run ~requirements ~k:10 records in
  checki "no probes needed" 0 report.counts.probes

let suite =
  [
    ("classify well separated", `Quick, test_classify_simple);
    ("classify overlapping", `Quick, test_classify_overlap);
    ("classify k = n and errors", `Quick, test_classify_k_equals_n);
    ("ties break by id", `Quick, test_ties_break_by_id);
    QCheck_alcotest.to_alcotest prop_certified_sound;
    ("run meets requirements", `Quick, test_run_meets_requirements);
    ("perfect recall is the exact top-k", `Quick, test_run_perfect_recall_is_exact);
    ("probe savings scale with recall", `Quick, test_probe_savings_scale_with_recall);
    ("zero recall probes nothing", `Quick, test_zero_recall_no_probes);
  ]
